package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/vec"
)

func TestSphereSDF(t *testing.T) {
	s := Sphere{Center: vec.New(1, 2, 3), Radius: 2}
	if d := s.SDF(vec.New(1, 2, 3)); math.Abs(d+2) > 1e-12 {
		t.Errorf("centre SDF = %v, want -2", d)
	}
	if d := s.SDF(vec.New(4, 2, 3)); math.Abs(d-1) > 1e-12 {
		t.Errorf("outside SDF = %v, want 1", d)
	}
	if d := s.SDF(vec.New(3, 2, 3)); math.Abs(d) > 1e-12 {
		t.Errorf("surface SDF = %v, want 0", d)
	}
}

func TestCapsuleSDF(t *testing.T) {
	c := Capsule{A: vec.New(0, 0, 0), B: vec.New(0, 0, 10), Radius: 1}
	// On the axis, mid-segment.
	if d := c.SDF(vec.New(0, 0, 5)); math.Abs(d+1) > 1e-12 {
		t.Errorf("axis SDF = %v, want -1", d)
	}
	// Radially out at mid-height.
	if d := c.SDF(vec.New(2, 0, 5)); math.Abs(d-1) > 1e-12 {
		t.Errorf("radial SDF = %v, want 1", d)
	}
	// Beyond the cap: spherical distance.
	if d := c.SDF(vec.New(0, 0, 12)); math.Abs(d-1) > 1e-12 {
		t.Errorf("cap SDF = %v, want 1", d)
	}
}

func TestTaperedCapsuleRadiusInterpolates(t *testing.T) {
	c := TaperedCapsule{A: vec.New(0, 0, 0), B: vec.New(0, 0, 10), RA: 2, RB: 1}
	// At z=0 radius 2: point at x=2 is on surface.
	if d := c.SDF(vec.New(2, 0, 0)); math.Abs(d) > 1e-9 {
		t.Errorf("SDF at A-surface = %v", d)
	}
	// At z=10 radius 1.
	if d := c.SDF(vec.New(1, 0, 10)); math.Abs(d) > 1e-9 {
		t.Errorf("SDF at B-surface = %v", d)
	}
	// Mid: radius 1.5.
	if d := c.SDF(vec.New(1.5, 0, 5)); math.Abs(d) > 1e-9 {
		t.Errorf("SDF at mid-surface = %v", d)
	}
}

func TestTorusArcQuarter(t *testing.T) {
	// Quarter torus in the XZ plane, centred at origin, major 5, tube 1.
	arc := TorusArc{
		Center: vec.New(0, 0, 0),
		U:      vec.New(1, 0, 0),
		V:      vec.New(0, 0, 1),
		Major:  5,
		Tube:   1,
		Angle:  math.Pi / 2,
	}
	// Point on the ring at 45 degrees is inside.
	p := vec.New(5*math.Cos(math.Pi/4), 0, 5*math.Sin(math.Pi/4))
	if d := arc.SDF(p); math.Abs(d+1) > 1e-9 {
		t.Errorf("ring SDF = %v, want -1", d)
	}
	// Point at angle beyond the arc (180 degrees) is far outside.
	q := vec.New(-5, 0, 0)
	if d := arc.SDF(q); d < 3 {
		t.Errorf("beyond-arc SDF = %v, want clamped to arc end distance", d)
	}
}

func TestUnionSDFIsMin(t *testing.T) {
	u := Union{
		Sphere{Center: vec.New(0, 0, 0), Radius: 1},
		Sphere{Center: vec.New(10, 0, 0), Radius: 2},
	}
	f := func(x, y, z float64) bool {
		p := vec.New(math.Mod(x, 20), math.Mod(y, 20), math.Mod(z, 20))
		d := u.SDF(p)
		d0 := u[0].SDF(p)
		d1 := u[1].SDF(p)
		return d == math.Min(d0, d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionBounds(t *testing.T) {
	u := Union{
		Sphere{Center: vec.New(0, 0, 0), Radius: 1},
		Sphere{Center: vec.New(10, 0, 0), Radius: 2},
	}
	b := u.Bounds()
	if b.Min.X != -1 || b.Max.X != 12 {
		t.Errorf("union bounds = %+v", b)
	}
}

func TestPipeInsideOutside(t *testing.T) {
	v := Pipe(20, 3)
	if !v.Inside(vec.New(0, 0, 10)) {
		t.Error("pipe axis midpoint should be fluid")
	}
	if v.Inside(vec.New(0, 0, -1)) {
		t.Error("below the inlet plane must be clipped")
	}
	if v.Inside(vec.New(0, 0, 21)) {
		t.Error("above the outlet plane must be clipped")
	}
	if v.Inside(vec.New(5, 0, 10)) {
		t.Error("outside the radius must be solid")
	}
}

func voxelPipe(t *testing.T) *Domain {
	t.Helper()
	d, err := Voxelise(Pipe(16, 3), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatalf("Voxelise: %v", err)
	}
	return d
}

func TestVoxelisePipeBasics(t *testing.T) {
	d := voxelPipe(t)
	if d.NumSites() == 0 {
		t.Fatal("no fluid sites")
	}
	// Fluid fraction of a pipe in its padded bounding box should be
	// sparse but nonzero.
	ff := d.FluidFraction()
	if ff <= 0 || ff > 0.6 {
		t.Errorf("fluid fraction = %v", ff)
	}
	// Every site should be retrievable through the index.
	for i, s := range d.Sites {
		if got := d.SiteAt(s.Pos); got != i {
			t.Fatalf("index mismatch at site %d: got %d", i, got)
		}
	}
}

func TestVoxeliseLinkConsistency(t *testing.T) {
	d := voxelPipe(t)
	m := d.Model
	for si, s := range d.Sites {
		for q := 1; q < m.Q; q++ {
			link := s.Links[q-1]
			c := m.C[q]
			np := s.Pos.Add(vec.I3{X: c[0], Y: c[1], Z: c[2]})
			nid := d.SiteAt(np)
			if link.Type == LinkFluid {
				if nid < 0 {
					t.Fatalf("site %d dir %d: fluid link to solid", si, q)
				}
				// The reverse link must also be fluid.
				rev := d.Sites[nid].Links[m.Opp[q]-1]
				if rev.Type != LinkFluid {
					t.Fatalf("site %d dir %d: reverse link not fluid", si, q)
				}
			} else {
				if nid >= 0 {
					t.Fatalf("site %d dir %d: non-fluid link to fluid site", si, q)
				}
				if link.Dist <= 0 || link.Dist > 1 {
					t.Fatalf("site %d dir %d: crossing dist %v out of (0,1]", si, q, link.Dist)
				}
			}
		}
	}
}

func TestVoxelisePipeHasInletAndOutlet(t *testing.T) {
	d := voxelPipe(t)
	var nIn, nOut, nWall int
	for _, s := range d.Sites {
		if s.Flags&FlagInlet != 0 {
			nIn++
		}
		if s.Flags&FlagOutlet != 0 {
			nOut++
		}
		if s.Flags&FlagWall != 0 {
			nWall++
		}
	}
	if nIn == 0 || nOut == 0 || nWall == 0 {
		t.Errorf("site classes: inlet=%d outlet=%d wall=%d; all must be nonzero", nIn, nOut, nWall)
	}
	// A pipe has roughly equal inlet and outlet cross-sections.
	ratio := float64(nIn) / float64(nOut)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("inlet/outlet site ratio = %v", ratio)
	}
}

func TestVoxeliseWallNormalsPointOutward(t *testing.T) {
	d := voxelPipe(t)
	for _, s := range d.Sites {
		if s.Flags&FlagWall == 0 {
			continue
		}
		n := s.WallNormal
		if math.Abs(n.Len()-1) > 1e-9 {
			t.Fatalf("wall normal not unit: %v", n)
		}
		// For a pipe along z, wall normals should be mostly radial.
		w := d.World(s.Pos)
		radial := vec.New(w.X, w.Y, 0).Norm()
		if radial.Len2() > 0 && n.Dot(radial) < 0 {
			t.Fatalf("wall normal %v points inward at %v", n, w)
		}
	}
}

func TestVoxeliseBlockCountsMatchSites(t *testing.T) {
	d := voxelPipe(t)
	var sum int32
	for _, c := range d.BlockFluidCount {
		if c < 0 {
			t.Fatalf("negative block count")
		}
		sum += c
	}
	if int(sum) != d.NumSites() {
		t.Errorf("block counts sum to %d, want %d", sum, d.NumSites())
	}
	// Recount directly.
	recount := make([]int32, d.NumBlocks())
	for _, s := range d.Sites {
		recount[d.BlockID(BlockOf(s.Pos))]++
	}
	for b := range recount {
		if recount[b] != d.BlockFluidCount[b] {
			t.Errorf("block %d count %d, want %d", b, d.BlockFluidCount[b], recount[b])
		}
	}
}

func TestVoxeliseBifurcation(t *testing.T) {
	d, err := Voxelise(Bifurcation(10, 8, 2.5, 0.6), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatalf("Voxelise: %v", err)
	}
	var nIn, nOut int
	outIDs := map[int]bool{}
	for _, s := range d.Sites {
		if s.Flags&FlagInlet != 0 {
			nIn++
		}
		if s.Flags&FlagOutlet != 0 {
			nOut++
			for _, l := range s.Links {
				if l.Type == LinkOutlet {
					outIDs[l.Iolet] = true
				}
			}
		}
	}
	if nIn == 0 {
		t.Error("no inlet sites")
	}
	if len(outIDs) != 2 {
		t.Errorf("expected 2 distinct outlets, got %v", outIDs)
	}
}

func TestVoxeliseAneurysmIsLargerThanPipe(t *testing.T) {
	pipe, err := Voxelise(Pipe(16, 3), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatal(err)
	}
	an, err := Voxelise(Aneurysm(16, 3, 5), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatal(err)
	}
	if an.NumSites() <= pipe.NumSites() {
		t.Errorf("aneurysm (%d sites) should exceed plain pipe (%d sites)",
			an.NumSites(), pipe.NumSites())
	}
}

func TestVoxeliseErrors(t *testing.T) {
	if _, err := Voxelise(Pipe(16, 3), 0, lattice.D3Q19()); err == nil {
		t.Error("zero spacing must error")
	}
	if _, err := Voxelise(Pipe(16, 3), -1, lattice.D3Q19()); err == nil {
		t.Error("negative spacing must error")
	}
}

func TestNeighbourSymmetry(t *testing.T) {
	d := voxelPipe(t)
	m := d.Model
	for si := range d.Sites {
		for q := 1; q < m.Q; q++ {
			n := d.Neighbour(si, q)
			if n < 0 {
				continue
			}
			back := d.Neighbour(n, m.Opp[q])
			if back != si {
				t.Fatalf("neighbour symmetry broken: %d --%d--> %d --opp--> %d", si, q, n, back)
			}
		}
	}
}

func TestWallCrossingBisection(t *testing.T) {
	s := Sphere{Center: vec.New(0, 0, 0), Radius: 1}
	// Segment from centre to (2,0,0): wall at t=0.5.
	tc := wallCrossing(s, vec.New(0, 0, 0), vec.New(2, 0, 0))
	if math.Abs(tc-0.5) > 1e-4 {
		t.Errorf("crossing = %v, want 0.5", tc)
	}
	// Segment entirely inside returns 1.
	if tc := wallCrossing(s, vec.New(0, 0, 0), vec.New(0.5, 0, 0)); tc != 1.0 {
		t.Errorf("inside crossing = %v, want 1", tc)
	}
}

func TestSDFGradient(t *testing.T) {
	s := Sphere{Center: vec.New(0, 0, 0), Radius: 1}
	g := sdfGradient(s, vec.New(0.9, 0, 0), 1e-4)
	if math.Abs(g.X-1) > 1e-6 || math.Abs(g.Y) > 1e-6 || math.Abs(g.Z) > 1e-6 {
		t.Errorf("gradient = %v, want (1,0,0)", g)
	}
}

func TestCerebralTreeVoxelises(t *testing.T) {
	d, err := Voxelise(CerebralTree(1.0), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatalf("Voxelise: %v", err)
	}
	if d.NumSites() < 1000 {
		t.Errorf("cerebral tree too small: %d sites", d.NumSites())
	}
	ff := d.FluidFraction()
	if ff > 0.25 {
		t.Errorf("cerebral tree should be sparse, fluid fraction = %v", ff)
	}
}

func TestWorldLatticeRoundTrip(t *testing.T) {
	d := voxelPipe(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		p := vec.I3{X: rng.Intn(d.Dims.X), Y: rng.Intn(d.Dims.Y), Z: rng.Intn(d.Dims.Z)}
		l := d.Lattice(d.World(p))
		if math.Abs(l.X-float64(p.X)) > 1e-9 ||
			math.Abs(l.Y-float64(p.Y)) > 1e-9 ||
			math.Abs(l.Z-float64(p.Z)) > 1e-9 {
			t.Fatalf("round trip failed: %v -> %v", p, l)
		}
	}
}

func TestBendVoxelises(t *testing.T) {
	d, err := Voxelise(Bend(10, 2), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatalf("Voxelise: %v", err)
	}
	var nIn, nOut int
	for _, s := range d.Sites {
		if s.Flags&FlagInlet != 0 {
			nIn++
		}
		if s.Flags&FlagOutlet != 0 {
			nOut++
		}
	}
	if nIn == 0 || nOut == 0 {
		t.Errorf("bend iolets: inlet=%d outlet=%d", nIn, nOut)
	}
}

// Package steering implements the computational-steering loop of
// Fig. 2: a client connects to the simulation master node, sends
// visualisation parameters (viewpoint, field, ROI), simulation
// parameter changes (iolet pressures) and control commands
// (pause/resume/quit), and receives rendered images and status reports
// (current step, performance, and "estimates on the remaining
// runtime"). Transport is newline-delimited JSON over TCP on the
// loopback interface — the paper's cluster network substituted by the
// only network available offline.
package steering

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/insitu"
)

// Op codes of client requests.
const (
	OpImage    = "image"
	OpData     = "data" // reduced multi-resolution field data (§V)
	OpStatus   = "status"
	OpSetIolet = "set-iolet"
	OpSetROI   = "set-roi"
	OpPause    = "pause"
	OpResume   = "resume"
	OpQuit     = "quit"
)

// ClientMsg is one steering request.
type ClientMsg struct {
	Op string `json:"op"`
	// Image parameters (OpImage); also persisted as the default render
	// request for unattended in situ frames.
	Request *insitu.Request `json:"request,omitempty"`
	// Iolet parameter change (OpSetIolet).
	Iolet   int     `json:"iolet,omitempty"`
	Density float64 `json:"density,omitempty"`
	// ROI in lattice coordinates (OpSetROI): min/max corners plus
	// refinement levels.
	ROIMin  [3]float64 `json:"roi_min,omitempty"`
	ROIMax  [3]float64 `json:"roi_max,omitempty"`
	Detail  int        `json:"detail,omitempty"`
	Context int        `json:"context,omitempty"`
}

// Status is the server's report on the running simulation.
type Status struct {
	Step          int     `json:"step"`
	TotalSteps    int     `json:"total_steps"`
	NumSites      int     `json:"num_sites"`
	Ranks         int     `json:"ranks"`
	SitesPerSec   float64 `json:"sites_per_sec"`
	RemainingSec  float64 `json:"remaining_sec"`
	Mass          float64 `json:"mass"`
	MaxSpeed      float64 `json:"max_speed"`
	Paused        bool    `json:"paused"`
	CommBytes     int64   `json:"comm_bytes"`
	LoadImbalance float64 `json:"load_imbalance"`
	ReducedBytes  int     `json:"reduced_bytes"`
	FullBytes     int     `json:"full_bytes"`
}

// ServerMsg is one steering reply.
type ServerMsg struct {
	Op    string `json:"op"`
	Error string `json:"error,omitempty"`
	// Image reply: PNG-encoded pixels.
	W   int    `json:"w,omitempty"`
	H   int    `json:"h,omitempty"`
	PNG []byte `json:"png,omitempty"`
	// Data reply: an octree.EncodeNodes stream of the requested
	// reduced field representation.
	Nodes []byte `json:"nodes,omitempty"`
	// Status reply.
	Status *Status `json:"status,omitempty"`
}

// Conn wraps a TCP connection with the framing used on both sides.
type Conn struct {
	c  net.Conn
	r  *bufio.Reader
	w  *bufio.Writer
	mu sync.Mutex
}

func newConn(c net.Conn) *Conn {
	return &Conn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
}

// send writes one JSON frame.
func (c *Conn) send(v any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// recv reads one JSON frame into v.
func (c *Conn) recv(v any) error {
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return err
	}
	return json.Unmarshal(line, v)
}

// recvLine reads one raw frame, leaving decoding to the caller so a
// malformed frame can be answered without tearing the connection down
// (newline framing stays intact regardless of the payload).
func (c *Conn) recvLine() ([]byte, error) {
	return c.r.ReadBytes('\n')
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// Op is a pending steering request awaiting the simulation loop.
type Op struct {
	Msg   ClientMsg
	reply chan ServerMsg
}

// Reply answers the client; must be called exactly once per Op.
func (o *Op) Reply(m ServerMsg) { o.reply <- m }

// Server accepts steering clients and queues their requests for the
// simulation master to poll between time steps (step 3-6 of the §IV-C1
// sequence: client sends parameters → master propagates → visualisation
// component builds the image → image returns to the client). The queue
// itself lives in a transport-agnostic Controller; the Server is just
// the newline-JSON-over-TCP transport in front of it.
type Server struct {
	ln        net.Listener
	ctrl      *Controller
	ownCtrl   bool
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	connMu sync.Mutex
	conns  map[*Conn]struct{}
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") with a private
// controller, owned and closed by the server.
func Serve(addr string) (*Server, error) {
	s, err := ServeController(addr, NewController())
	if err != nil {
		return nil, err
	}
	s.ownCtrl = true
	return s, nil
}

// ServeController starts the TCP transport in front of an existing
// controller — e.g. one shared with the HTTP service — which the
// caller remains responsible for closing.
func ServeController(addr string, ctrl *Controller) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("steering: %w", err)
	}
	s := &Server{ln: ln, ctrl: ctrl, done: make(chan struct{}), conns: make(map[*Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Controller returns the queue this transport feeds.
func (s *Server) Controller() *Controller { return s.ctrl }

// Addr returns the bound address for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := newConn(conn)
		// Registration and Close's sweep share connMu: either the
		// sweep sees this conn and closes it, or we see done already
		// closed and refuse the late accept — otherwise a connection
		// accepted just before Close would park a handler in a read
		// forever and deadlock Close's wg.Wait.
		s.connMu.Lock()
		select {
		case <-s.done:
			s.connMu.Unlock()
			c.Close()
			continue
		default:
		}
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.clientLoop(c)
	}
}

func (s *Server) clientLoop(c *Conn) {
	defer s.wg.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()
	for {
		line, err := c.recvLine()
		if err != nil {
			return
		}
		var msg ClientMsg
		if err := json.Unmarshal(line, &msg); err != nil {
			// Framing is intact (one line consumed); answer and keep
			// the connection rather than dropping the client.
			if err := c.send(ServerMsg{Error: "malformed frame: " + err.Error()}); err != nil {
				return
			}
			continue
		}
		op, err := s.ctrl.Submit(msg)
		if err != nil {
			select {
			case <-s.ctrl.Done():
				return
			default:
			}
			if err := c.send(ServerMsg{Op: msg.Op, Error: err.Error()}); err != nil {
				return
			}
			continue
		}
		select {
		case rep := <-op.reply:
			if err := c.send(rep); err != nil {
				return
			}
		case <-s.ctrl.Done():
			return
		case <-s.done:
			return
		}
		if msg.Op == OpQuit {
			return
		}
	}
}

// Poll returns the next pending request without blocking, or nil.
func (s *Server) Poll() *Op { return s.ctrl.Poll() }

// PollWait blocks until a request arrives or the server closes; used
// while the simulation is paused.
func (s *Server) PollWait() *Op { return s.ctrl.PollWait() }

// Close stops accepting, unblocks handlers, and closes the controller
// when the server owns it. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.ln.Close()
		// Unblock handlers parked in a read on a live connection;
		// done is closed first so acceptLoop cannot register a new
		// conn after this sweep.
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		if s.ownCtrl {
			s.ctrl.Close()
		}
	})
	s.wg.Wait()
}

// Client is the user-side steering handle.
type Client struct {
	conn *Conn
}

// Dial connects to a steering server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("steering: %w", err)
	}
	return &Client{conn: newConn(c)}, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(msg ClientMsg) (ServerMsg, error) {
	if err := c.conn.send(msg); err != nil {
		return ServerMsg{}, err
	}
	var rep ServerMsg
	if err := c.conn.recv(&rep); err != nil {
		return ServerMsg{}, err
	}
	if rep.Error != "" {
		return rep, fmt.Errorf("steering: server: %s", rep.Error)
	}
	return rep, nil
}

// RequestImage asks the simulation to render with the given parameters
// and returns PNG bytes plus dimensions.
func (c *Client) RequestImage(req insitu.Request) (png []byte, w, h int, err error) {
	rep, err := c.roundTrip(ClientMsg{Op: OpImage, Request: &req})
	if err != nil {
		return nil, 0, 0, err
	}
	return rep.PNG, rep.W, rep.H, nil
}

// Status fetches the simulation status report.
func (c *Client) Status() (Status, error) {
	rep, err := c.roundTrip(ClientMsg{Op: OpStatus})
	if err != nil {
		return Status{}, err
	}
	if rep.Status == nil {
		return Status{}, fmt.Errorf("steering: empty status")
	}
	return *rep.Status, nil
}

// SetIoletDensity changes a boundary condition mid-run — the "closing
// the loop" act of §IV-C3.
func (c *Client) SetIoletDensity(iolet int, density float64) error {
	_, err := c.roundTrip(ClientMsg{Op: OpSetIolet, Iolet: iolet, Density: density})
	return err
}

// FetchReduced requests the multi-resolution field representation for
// a region of interest: full detail inside [min, max] (lattice
// coordinates), context level elsewhere. This is §V's alternative to
// shipping raw fields; the caller decodes with octree.DecodeNodes.
func (c *Client) FetchReduced(min, max [3]float64, detail, context int) ([]byte, error) {
	rep, err := c.roundTrip(ClientMsg{
		Op: OpData, ROIMin: min, ROIMax: max, Detail: detail, Context: context,
	})
	if err != nil {
		return nil, err
	}
	return rep.Nodes, nil
}

// SetROI narrows post-processing to a region of interest.
func (c *Client) SetROI(min, max [3]float64, detail, context int) error {
	_, err := c.roundTrip(ClientMsg{
		Op: OpSetROI, ROIMin: min, ROIMax: max, Detail: detail, Context: context,
	})
	return err
}

// Pause suspends time stepping (the simulation keeps serving steering
// requests).
func (c *Client) Pause() error {
	_, err := c.roundTrip(ClientMsg{Op: OpPause})
	return err
}

// Resume continues time stepping.
func (c *Client) Resume() error {
	_, err := c.roundTrip(ClientMsg{Op: OpResume})
	return err
}

// Quit asks the simulation to terminate early.
func (c *Client) Quit() error {
	_, err := c.roundTrip(ClientMsg{Op: OpQuit})
	return err
}

package steering

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/insitu"
)

// echoServer runs a server goroutine that services ops with canned
// replies, mimicking the simulation master loop.
func echoServer(t *testing.T) (*Server, *sync.WaitGroup) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			op := srv.PollWait()
			if op == nil {
				return
			}
			switch op.Msg.Op {
			case OpImage:
				op.Reply(ServerMsg{Op: OpImage, W: 8, H: 6, PNG: []byte{1, 2, 3}})
			case OpStatus:
				op.Reply(ServerMsg{Op: OpStatus, Status: &Status{Step: 42, TotalSteps: 100, Ranks: 4}})
			case OpSetIolet:
				if op.Msg.Iolet < 0 {
					op.Reply(ServerMsg{Op: OpSetIolet, Error: "bad iolet"})
				} else {
					op.Reply(ServerMsg{Op: OpSetIolet})
				}
			case OpSetROI, OpPause, OpResume, OpQuit:
				op.Reply(ServerMsg{Op: op.Msg.Op})
			default:
				op.Reply(ServerMsg{Op: op.Msg.Op, Error: "unknown"})
			}
			if op.Msg.Op == OpQuit {
				return
			}
		}
	}()
	return srv, &wg
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	png, w, h, err := cl.RequestImage(insitu.DefaultRequest())
	if err != nil {
		t.Fatal(err)
	}
	if w != 8 || h != 6 || len(png) != 3 {
		t.Errorf("image reply: w=%d h=%d png=%v", w, h, png)
	}
	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 42 || st.TotalSteps != 100 || st.Ranks != 4 {
		t.Errorf("status = %+v", st)
	}
	if err := cl.SetIoletDensity(0, 1.02); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetROI([3]float64{0, 0, 0}, [3]float64{8, 8, 8}, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := cl.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Quit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestServerErrorPropagates(t *testing.T) {
	srv, _ := echoServer(t)
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SetIoletDensity(-5, 1.0); err == nil {
		t.Error("server error not propagated")
	}
}

func TestPollNonBlocking(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	if op := srv.Poll(); op != nil {
		t.Error("poll returned phantom op")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("poll blocked")
	}
}

func TestMultipleClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			op := srv.PollWait()
			if op == nil {
				return
			}
			op.Reply(ServerMsg{Op: OpStatus, Status: &Status{Step: i}})
		}
	}()
	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.Status(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Status(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// TestMalformedFrame sends a non-JSON line; the server must answer
// with an error frame and keep the connection serviceable.
func TestMalformedFrame(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(nc)
	defer c.Close()
	if _, err := nc.Write([]byte("{this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var rep ServerMsg
	if err := c.recv(&rep); err != nil {
		t.Fatalf("no reply to malformed frame: %v", err)
	}
	if rep.Error == "" {
		t.Errorf("malformed frame accepted: %+v", rep)
	}
	// The same connection still works for a valid request afterwards.
	if err := c.send(ClientMsg{Op: OpStatus}); err != nil {
		t.Fatal(err)
	}
	var rep2 ServerMsg
	if err := c.recv(&rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Error != "" || rep2.Status == nil || rep2.Status.Step != 42 {
		t.Errorf("connection unusable after malformed frame: %+v", rep2)
	}
	if err := c.send(ClientMsg{Op: OpQuit}); err != nil {
		t.Fatal(err)
	}
	var rep3 ServerMsg
	if err := c.recv(&rep3); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestUnknownOp verifies an unrecognised verb is refused at the
// controller boundary without reaching the simulation loop.
func TestUnknownOp(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(nc)
	defer c.Close()
	if err := c.send(ClientMsg{Op: "explode"}); err != nil {
		t.Fatal(err)
	}
	var rep ServerMsg
	if err := c.recv(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Error == "" {
		t.Errorf("unknown op accepted: %+v", rep)
	}
	// Still serviceable, then shut the echo loop down.
	if err := c.send(ClientMsg{Op: OpQuit}); err != nil {
		t.Fatal(err)
	}
	if err := c.recv(&rep); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestConcurrentClientsInterleaved has two clients blast interleaved
// ops at one server; each reply must route back to the connection that
// asked. The echo loop tags replies with the request's iolet index so
// cross-wiring is detectable.
func TestConcurrentClientsInterleaved(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			op := srv.PollWait()
			if op == nil {
				return
			}
			// Echo the iolet index through the W field.
			op.Reply(ServerMsg{Op: op.Msg.Op, W: op.Msg.Iolet})
		}
	}()

	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, 2*perClient)
	for client := 0; client < 2; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			c := newConn(nc)
			defer c.Close()
			for i := 0; i < perClient; i++ {
				tag := client*1000 + i
				if err := c.send(ClientMsg{Op: OpSetIolet, Iolet: tag}); err != nil {
					errs <- err
					return
				}
				var rep ServerMsg
				if err := c.recv(&rep); err != nil {
					errs <- err
					return
				}
				if rep.W != tag {
					errs <- fmt.Errorf("client %d got reply for tag %d, want %d", client, rep.W, tag)
				}
			}
		}(client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	srv.Close()
	<-done
}

// TestControllerDirect drives the transport-agnostic queue the way the
// HTTP service does: Do round trips without any TCP in the picture.
func TestControllerDirect(t *testing.T) {
	ctrl := NewController()
	go func() {
		for {
			op := ctrl.PollWait()
			if op == nil {
				return
			}
			if op.Msg.Op == OpSetIolet && op.Msg.Iolet < 0 {
				op.Reply(ServerMsg{Op: op.Msg.Op, Error: "bad iolet"})
				continue
			}
			op.Reply(ServerMsg{Op: op.Msg.Op})
		}
	}()
	if _, err := ctrl.Do(ClientMsg{Op: OpPause}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Do(ClientMsg{Op: OpSetIolet, Iolet: -1}); err == nil {
		t.Error("server-side error not surfaced")
	}
	if _, err := ctrl.Do(ClientMsg{Op: "nonsense"}); err == nil {
		t.Error("unknown op accepted by controller")
	}
	if ctrl.Closed() {
		t.Error("controller reports closed while open")
	}
	ctrl.Close()
	ctrl.Close() // idempotent
	if !ctrl.Closed() {
		t.Error("controller not closed after Close")
	}
	if _, err := ctrl.Do(ClientMsg{Op: OpStatus}); err == nil {
		t.Error("Do succeeded on closed controller")
	}
	if op := ctrl.PollWait(); op != nil {
		t.Error("PollWait returned op after close")
	}
}

// TestSharedControllerTCPAndDirect runs the TCP transport and a direct
// in-process caller against one controller — the exact sharing the
// HTTP service relies on.
func TestSharedControllerTCPAndDirect(t *testing.T) {
	ctrl := NewController()
	defer ctrl.Close()
	srv, err := ServeController("127.0.0.1:0", ctrl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Controller() != ctrl {
		t.Fatal("server did not adopt the shared controller")
	}
	go func() {
		for {
			op := ctrl.PollWait()
			if op == nil {
				return
			}
			op.Reply(ServerMsg{Op: op.Msg.Op, W: op.Msg.Iolet})
		}
	}()
	// Direct caller.
	rep, err := ctrl.Do(ClientMsg{Op: OpSetIolet, Iolet: 7})
	if err != nil || rep.W != 7 {
		t.Fatalf("direct do: %+v, %v", rep, err)
	}
	// TCP caller against the same queue.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SetIoletDensity(3, 1.0); err != nil {
		t.Fatal(err)
	}
	// Closing the server must not close a shared controller.
	srv.Close()
	if ctrl.Closed() {
		t.Error("server close tore down the shared controller")
	}
}

func TestServerCloseUnblocksPollWait(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Op, 1)
	go func() { got <- srv.PollWait() }()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case op := <-got:
		if op != nil {
			t.Error("expected nil op on close")
		}
	case <-time.After(2 * time.Second):
		t.Error("PollWait did not unblock on Close")
	}
}

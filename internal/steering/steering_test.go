package steering

import (
	"sync"
	"testing"
	"time"

	"repro/internal/insitu"
)

// echoServer runs a server goroutine that services ops with canned
// replies, mimicking the simulation master loop.
func echoServer(t *testing.T) (*Server, *sync.WaitGroup) {
	t.Helper()
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			op := srv.PollWait()
			if op == nil {
				return
			}
			switch op.Msg.Op {
			case OpImage:
				op.Reply(ServerMsg{Op: OpImage, W: 8, H: 6, PNG: []byte{1, 2, 3}})
			case OpStatus:
				op.Reply(ServerMsg{Op: OpStatus, Status: &Status{Step: 42, TotalSteps: 100, Ranks: 4}})
			case OpSetIolet:
				if op.Msg.Iolet < 0 {
					op.Reply(ServerMsg{Op: OpSetIolet, Error: "bad iolet"})
				} else {
					op.Reply(ServerMsg{Op: OpSetIolet})
				}
			case OpSetROI, OpPause, OpResume, OpQuit:
				op.Reply(ServerMsg{Op: op.Msg.Op})
			default:
				op.Reply(ServerMsg{Op: op.Msg.Op, Error: "unknown"})
			}
			if op.Msg.Op == OpQuit {
				return
			}
		}
	}()
	return srv, &wg
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, wg := echoServer(t)
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	png, w, h, err := cl.RequestImage(insitu.DefaultRequest())
	if err != nil {
		t.Fatal(err)
	}
	if w != 8 || h != 6 || len(png) != 3 {
		t.Errorf("image reply: w=%d h=%d png=%v", w, h, png)
	}
	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Step != 42 || st.TotalSteps != 100 || st.Ranks != 4 {
		t.Errorf("status = %+v", st)
	}
	if err := cl.SetIoletDensity(0, 1.02); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetROI([3]float64{0, 0, 0}, [3]float64{8, 8, 8}, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := cl.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Quit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestServerErrorPropagates(t *testing.T) {
	srv, _ := echoServer(t)
	defer srv.Close()
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SetIoletDensity(-5, 1.0); err == nil {
		t.Error("server error not propagated")
	}
}

func TestPollNonBlocking(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	start := time.Now()
	if op := srv.Poll(); op != nil {
		t.Error("poll returned phantom op")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("poll blocked")
	}
}

func TestMultipleClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			op := srv.PollWait()
			if op == nil {
				return
			}
			op.Reply(ServerMsg{Op: OpStatus, Status: &Status{Step: i}})
		}
	}()
	c1, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.Status(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Status(); err != nil {
		t.Fatal(err)
	}
	<-done
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestServerCloseUnblocksPollWait(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Op, 1)
	go func() { got <- srv.PollWait() }()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case op := <-got:
		if op != nil {
			t.Error("expected nil op on close")
		}
	case <-time.After(2 * time.Second):
		t.Error("PollWait did not unblock on Close")
	}
}

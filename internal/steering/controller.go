package steering

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by Submit/Do once the controller is closed —
// i.e. the simulation behind it has terminated.
var ErrClosed = errors.New("steering: controller closed")

// knownOps is the closed set of request verbs a Controller accepts.
var knownOps = map[string]bool{
	OpImage:    true,
	OpData:     true,
	OpStatus:   true,
	OpSetIolet: true,
	OpSetROI:   true,
	OpPause:    true,
	OpResume:   true,
	OpQuit:     true,
}

// KnownOp reports whether op is a valid steering verb.
func KnownOp(op string) bool { return knownOps[op] }

// Controller is the transport-agnostic steering front door of a single
// simulation: any number of producers (the legacy TCP protocol, the
// HTTP service, in-process callers) submit ops, and the simulation
// master polls them between time steps exactly as before. Extracting
// this queue from the TCP Server is what lets one solver loop serve
// many transports at once.
type Controller struct {
	reqs      chan *Op
	done      chan struct{}
	closeOnce sync.Once
}

// NewController returns a controller with the standard request buffer.
func NewController() *Controller {
	return &Controller{reqs: make(chan *Op, 64), done: make(chan struct{})}
}

// Submit enqueues a request and returns the pending Op whose reply
// channel resolves once the simulation loop services it. Unknown verbs
// and closed controllers fail immediately without touching the queue.
func (c *Controller) Submit(msg ClientMsg) (*Op, error) {
	if !KnownOp(msg.Op) {
		return nil, fmt.Errorf("steering: unknown op %q", msg.Op)
	}
	// Check closed first: a select with both cases ready picks
	// randomly, and a closed controller must never accept work.
	if c.Closed() {
		return nil, ErrClosed
	}
	op := &Op{Msg: msg, reply: make(chan ServerMsg, 1)}
	select {
	case c.reqs <- op:
		return op, nil
	case <-c.done:
		return nil, ErrClosed
	}
}

// Do submits a request and blocks for the simulation's reply. A reply
// carrying a server-side error is surfaced as a Go error, mirroring
// the TCP client's round trip.
func (c *Controller) Do(msg ClientMsg) (ServerMsg, error) {
	op, err := c.Submit(msg)
	if err != nil {
		return ServerMsg{}, err
	}
	select {
	case rep := <-op.reply:
		if rep.Error != "" {
			return rep, fmt.Errorf("steering: %s", rep.Error)
		}
		return rep, nil
	case <-c.done:
		return ServerMsg{}, ErrClosed
	}
}

// Poll returns the next pending request without blocking, or nil.
func (c *Controller) Poll() *Op {
	select {
	case op := <-c.reqs:
		return op
	default:
		return nil
	}
}

// PollWait blocks until a request arrives or the controller closes;
// used while the simulation is paused. Once closed it always returns
// nil, even with ops still queued — their submitters are unblocked
// through the done signal instead.
func (c *Controller) PollWait() *Op {
	if c.Closed() {
		return nil
	}
	select {
	case op := <-c.reqs:
		return op
	case <-c.done:
		return nil
	}
}

// Done exposes the closed signal so transports can unblock.
func (c *Controller) Done() <-chan struct{} { return c.done }

// Closed reports whether Close has been called.
func (c *Controller) Closed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// Close drains the controller: pending and future Submit/Do calls
// return errors and PollWait unblocks. Safe to call more than once.
func (c *Controller) Close() {
	c.closeOnce.Do(func() { close(c.done) })
}

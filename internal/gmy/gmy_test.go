package gmy

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/geometry"
	"repro/internal/lattice"
	"repro/internal/par"
)

func testDomain(t testing.TB) *geometry.Domain {
	t.Helper()
	d, err := geometry.Voxelise(geometry.Aneurysm(16, 3, 4), 1.0, lattice.D3Q19())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumSites() != d.NumSites() {
		t.Fatalf("site count %d, want %d", d2.NumSites(), d.NumSites())
	}
	if d2.Dims != d.Dims || d2.H != d.H {
		t.Fatalf("header mismatch: %+v vs %+v", d2.Dims, d.Dims)
	}
	if len(d2.Iolets) != len(d.Iolets) {
		t.Fatalf("iolet count %d, want %d", len(d2.Iolets), len(d.Iolets))
	}
	for k := range d.Iolets {
		a, b := d.Iolets[k], d2.Iolets[k]
		if a.IsInlet != b.IsInlet || math.Abs(a.Pressure-b.Pressure) > 1e-12 ||
			a.Center.Dist(b.Center) > 1e-12 || math.Abs(a.Radius-b.Radius) > 1e-12 {
			t.Fatalf("iolet %d mismatch: %+v vs %+v", k, a, b)
		}
	}
	// Sites must round-trip in canonical order with identical links.
	for i := range d.Sites {
		a, b := d.Sites[i], d2.Sites[i]
		if a.Pos != b.Pos || a.Flags != b.Flags {
			t.Fatalf("site %d: %+v vs %+v", i, a.Pos, b.Pos)
		}
		for q := range a.Links {
			la, lb := a.Links[q], b.Links[q]
			if la.Type != lb.Type || la.Iolet != lb.Iolet {
				t.Fatalf("site %d link %d: %+v vs %+v", i, q, la, lb)
			}
			// Dist survives as float32.
			if math.Abs(la.Dist-lb.Dist) > 1e-6 {
				t.Fatalf("site %d link %d dist: %v vs %v", i, q, la.Dist, lb.Dist)
			}
		}
		if a.Flags&geometry.FlagWall != 0 {
			if a.WallNormal.Dist(b.WallNormal) > 1e-6 {
				t.Fatalf("site %d wall normal: %v vs %v", i, a.WallNormal, b.WallNormal)
			}
		}
	}
	// Block tables must agree.
	for b := range d.BlockFluidCount {
		if d.BlockFluidCount[b] != d2.BlockFluidCount[b] {
			t.Fatalf("block %d count %d vs %d", b, d.BlockFluidCount[b], d2.BlockFluidCount[b])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gmy file at all..."))); err == nil {
		t.Error("garbage accepted")
	}
	// Correct magic, wrong version.
	var buf bytes.Buffer
	if err := writeU32(&buf, Magic, 99); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 64))
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("bad version accepted")
	}
}

func TestReadTruncated(t *testing.T) {
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		cut := full[:int(float64(len(full))*frac)]
		if _, err := Read(bytes.NewReader(cut)); err == nil {
			t.Errorf("truncation at %.0f%% accepted", frac*100)
		}
	}
}

func TestCompressionActuallyShrinks(t *testing.T) {
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Raw per-site cost is at least 6 (pos) + 1 (flags) + 18 (link
	// types); the compressed file should be well under that bound.
	rawLower := d.NumSites() * 25
	if buf.Len() >= rawLower {
		t.Errorf("file %d bytes not smaller than raw lower bound %d", buf.Len(), rawLower)
	}
}

func TestInitialBalanceProperties(t *testing.T) {
	blockFluid := []int32{10, 0, 5, 30, 30, 2, 8, 0, 40, 12}
	for _, ranks := range []int{1, 2, 3, 5} {
		assign := InitialBalance(blockFluid, ranks)
		if len(assign) != len(blockFluid) {
			t.Fatalf("assign length %d", len(assign))
		}
		// Monotone non-decreasing (contiguous runs).
		for b := 1; b < len(assign); b++ {
			if assign[b] < assign[b-1] {
				t.Fatalf("non-contiguous assignment %v", assign)
			}
		}
		for _, a := range assign {
			if int(a) >= ranks || a < 0 {
				t.Fatalf("rank %d out of range", a)
			}
		}
		q := BalanceQuality(blockFluid, assign, ranks)
		if q < 1 {
			t.Fatalf("quality %v < 1", q)
		}
		if ranks <= 3 && q > 2.0 {
			t.Errorf("ranks=%d: balance quality %v too poor", ranks, q)
		}
	}
}

func TestHeaderSizeMatchesStream(t *testing.T) {
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// headerSize + sum(blockLen) must equal the stream length.
	total := headerSize(h)
	for b := 0; b < h.NumBlocks(); b++ {
		total += h.BlockPayloadLen(b)
	}
	if total != buf.Len() {
		t.Errorf("computed size %d, stream is %d", total, buf.Len())
	}
}

func TestParallelReadReconstructsDomain(t *testing.T) {
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	file := buf.Bytes()
	for _, ranks := range []int{1, 2, 4} {
		for _, readers := range []int{1, 2, ranks} {
			rt := par.NewRuntime(ranks)
			collected := make([]map[int][]geometry.Site, ranks)
			var assign []int32
			rt.Run(func(c *par.Comm) {
				h, a, owned, err := ParallelRead(c, file, readers)
				if err != nil {
					panic(err)
				}
				if h.NumBlocks() != d.NumBlocks() {
					panic("block count mismatch")
				}
				collected[c.Rank()] = owned
				if c.Rank() == 0 {
					assign = a
				}
			})
			// Union of all ranks' sites must equal the original domain.
			totalSites := 0
			for rank, owned := range collected {
				for b, sites := range owned {
					if int(assign[b]) != rank {
						t.Fatalf("ranks=%d readers=%d: block %d landed on rank %d, assigned %d",
							ranks, readers, b, rank, assign[b])
					}
					if len(sites) != int(d.BlockFluidCount[b]) {
						t.Fatalf("block %d: %d sites, want %d", b, len(sites), d.BlockFluidCount[b])
					}
					totalSites += len(sites)
				}
			}
			if totalSites != d.NumSites() {
				t.Fatalf("ranks=%d readers=%d: %d sites distributed, want %d",
					ranks, readers, totalSites, d.NumSites())
			}
		}
	}
}

// TestParallelReadTrafficTradeoff measures the paper's stated knob:
// more readers → less redistribution traffic (each reader keeps more of
// what it reads... actually more readers spread payloads closer to
// owners), fewer readers → all data funnels through rank 0.
func TestParallelReadTrafficTradeoff(t *testing.T) {
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	file := buf.Bytes()
	const ranks = 4
	traffic := func(readers int) int64 {
		rt := par.NewRuntime(ranks)
		rt.Run(func(c *par.Comm) {
			if _, _, _, err := ParallelRead(c, file, readers); err != nil {
				panic(err)
			}
		})
		return rt.Traffic().Bytes()
	}
	t1 := traffic(1)
	t4 := traffic(4)
	if t4 >= t1 {
		t.Errorf("readers=ranks should reduce distribution traffic: 1 reader %d bytes, 4 readers %d", t1, t4)
	}
}

func TestSortedBlockIDs(t *testing.T) {
	m := map[int][]geometry.Site{5: nil, 1: nil, 3: nil}
	ids := SortedBlockIDs(m)
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 5 {
		t.Errorf("ids = %v", ids)
	}
}

func TestRoundTripThroughSolver(t *testing.T) {
	// A domain reconstructed from a gmy stream must drive the solver to
	// the same state as the original (streaming tables rebuilt
	// identically). Uses a short run on the aneurysm.
	d := testDomain(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Wall distances survive only as float32, which does not affect the
	// bounce-back solver arithmetic; site order and link types do.
	for i := range d.Sites {
		if d.Sites[i].Pos != d2.Sites[i].Pos {
			t.Fatalf("site order diverged at %d", i)
		}
	}
}

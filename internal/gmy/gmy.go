// Package gmy implements the two-level sparse geometry file format of
// section IV-B: "HemeLB reads data from a two-level file format, where
// coarse grained blocks are described solely by the volume of fluid
// within each one. This data is used to perform an initial approximate
// load balance. A subset of the cores then read the detailed geometry
// data and distribute the data to those cores that require it."
//
// Level 1 is a block table giving only the fluid-site count and payload
// extent of each 8³ block; level 2 is a zlib-compressed per-block
// payload of site records (position, link classification, wall
// normals). InitialBalance consumes only level 1; ParallelRead lets a
// configurable subset of ranks decode level 2 and redistribute.
package gmy

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geometry"
	"repro/internal/lattice"
	"repro/internal/vec"
)

// Magic identifies a gmy stream; Version is bumped on layout changes.
const (
	Magic   = 0x676d7932 // "gmy2"
	Version = 1
)

// Header is the fixed-size portion of the file.
type Header struct {
	Dims      vec.I3
	Origin    vec.V3
	H         float64
	BlockSize int
	ModelQ    int
	Iolets    []geometry.Iolet
	// BlockFluid[b] is the fluid-site count of block b — the coarse
	// level used for the initial approximate balance.
	BlockFluid []int32
	// blockLen[b] is the compressed payload length of block b.
	blockLen []int32
}

// BlockDims returns the block-grid extent implied by Dims.
func (h *Header) BlockDims() vec.I3 {
	bs := h.BlockSize
	return vec.I3{
		X: (h.Dims.X + bs - 1) / bs,
		Y: (h.Dims.Y + bs - 1) / bs,
		Z: (h.Dims.Z + bs - 1) / bs,
	}
}

// NumBlocks returns the total block count.
func (h *Header) NumBlocks() int {
	bd := h.BlockDims()
	return bd.X * bd.Y * bd.Z
}

func writeF64(w io.Writer, vs ...float64) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeU32(w io.Writer, vs ...uint32) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// Write serialises a voxelised domain. Layout: header, iolets, block
// table (fluid count + compressed length per block), then the
// compressed block payloads in block-id order.
func Write(w io.Writer, d *geometry.Domain) error {
	if err := writeU32(w, Magic, Version,
		uint32(d.Dims.X), uint32(d.Dims.Y), uint32(d.Dims.Z),
		uint32(geometry.BlockSize), uint32(d.Model.Q), uint32(len(d.Iolets))); err != nil {
		return fmt.Errorf("gmy: header: %w", err)
	}
	if err := writeF64(w, d.Origin.X, d.Origin.Y, d.Origin.Z, d.H); err != nil {
		return fmt.Errorf("gmy: header: %w", err)
	}
	for _, io := range d.Iolets {
		if err := writeF64(w, io.Center.X, io.Center.Y, io.Center.Z,
			io.Normal.X, io.Normal.Y, io.Normal.Z, io.Radius, io.Pressure); err != nil {
			return fmt.Errorf("gmy: iolet: %w", err)
		}
		flag := uint32(0)
		if io.IsInlet {
			flag = 1
		}
		if err := writeU32(w, flag); err != nil {
			return fmt.Errorf("gmy: iolet: %w", err)
		}
	}
	// Group sites by block.
	nb := d.NumBlocks()
	blockSites := make([][]int, nb)
	for i, s := range d.Sites {
		b := d.BlockID(geometry.BlockOf(s.Pos))
		blockSites[b] = append(blockSites[b], i)
	}
	payloads := make([][]byte, nb)
	for b := 0; b < nb; b++ {
		if len(blockSites[b]) == 0 {
			continue
		}
		var raw bytes.Buffer
		for _, si := range blockSites[b] {
			encodeSite(&raw, d, si)
		}
		var comp bytes.Buffer
		zw := zlib.NewWriter(&comp)
		if _, err := zw.Write(raw.Bytes()); err != nil {
			return fmt.Errorf("gmy: compress block %d: %w", b, err)
		}
		if err := zw.Close(); err != nil {
			return fmt.Errorf("gmy: compress block %d: %w", b, err)
		}
		payloads[b] = comp.Bytes()
	}
	// Block table.
	for b := 0; b < nb; b++ {
		if err := writeU32(w, uint32(len(blockSites[b])), uint32(len(payloads[b]))); err != nil {
			return fmt.Errorf("gmy: block table: %w", err)
		}
	}
	for b := 0; b < nb; b++ {
		if len(payloads[b]) == 0 {
			continue
		}
		if _, err := w.Write(payloads[b]); err != nil {
			return fmt.Errorf("gmy: block payload %d: %w", b, err)
		}
	}
	return nil
}

// encodeSite appends one site record: position (3×u16), flags (u8),
// wall normal (3×f32, wall sites only), then per non-rest direction a
// link record: type u8 plus, for non-fluid links, dist f32 and iolet
// u8.
func encodeSite(buf *bytes.Buffer, d *geometry.Domain, si int) {
	s := &d.Sites[si]
	var tmp [4]byte
	put16 := func(v int) {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(v))
		buf.Write(tmp[:2])
	}
	put16(s.Pos.X)
	put16(s.Pos.Y)
	put16(s.Pos.Z)
	buf.WriteByte(byte(s.Flags))
	if s.Flags&geometry.FlagWall != 0 {
		putF32 := func(v float64) {
			binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(float32(v)))
			buf.Write(tmp[:4])
		}
		putF32(s.WallNormal.X)
		putF32(s.WallNormal.Y)
		putF32(s.WallNormal.Z)
	}
	for _, l := range s.Links {
		buf.WriteByte(byte(l.Type))
		if l.Type == geometry.LinkFluid {
			continue
		}
		binary.LittleEndian.PutUint32(tmp[:4], math.Float32bits(float32(l.Dist)))
		buf.Write(tmp[:4])
		io := l.Iolet
		if io < 0 {
			io = 255
		}
		buf.WriteByte(byte(io))
	}
}

// decodeSite parses one site record, the inverse of encodeSite.
func decodeSite(r *bytes.Reader, q int) (geometry.Site, error) {
	var s geometry.Site
	var tmp [4]byte
	get16 := func() (int, error) {
		if _, err := io.ReadFull(r, tmp[:2]); err != nil {
			return 0, err
		}
		return int(binary.LittleEndian.Uint16(tmp[:2])), nil
	}
	var err error
	if s.Pos.X, err = get16(); err != nil {
		return s, err
	}
	if s.Pos.Y, err = get16(); err != nil {
		return s, err
	}
	if s.Pos.Z, err = get16(); err != nil {
		return s, err
	}
	fb, err := r.ReadByte()
	if err != nil {
		return s, err
	}
	s.Flags = geometry.SiteFlags(fb)
	if s.Flags&geometry.FlagWall != 0 {
		getF32 := func() (float64, error) {
			if _, err := io.ReadFull(r, tmp[:4]); err != nil {
				return 0, err
			}
			return float64(math.Float32frombits(binary.LittleEndian.Uint32(tmp[:4]))), nil
		}
		if s.WallNormal.X, err = getF32(); err != nil {
			return s, err
		}
		if s.WallNormal.Y, err = getF32(); err != nil {
			return s, err
		}
		if s.WallNormal.Z, err = getF32(); err != nil {
			return s, err
		}
	}
	s.Links = make([]geometry.Link, q-1)
	for i := range s.Links {
		tb, err := r.ReadByte()
		if err != nil {
			return s, err
		}
		s.Links[i].Type = geometry.LinkType(tb)
		s.Links[i].Iolet = -1
		if s.Links[i].Type == geometry.LinkFluid {
			continue
		}
		if _, err := io.ReadFull(r, tmp[:4]); err != nil {
			return s, err
		}
		s.Links[i].Dist = float64(math.Float32frombits(binary.LittleEndian.Uint32(tmp[:4])))
		ib, err := r.ReadByte()
		if err != nil {
			return s, err
		}
		if ib == 255 {
			s.Links[i].Iolet = -1
		} else {
			s.Links[i].Iolet = int(ib)
		}
	}
	return s, nil
}

// ReadHeader parses the header and block table, leaving r positioned at
// the first block payload.
func ReadHeader(r io.Reader) (*Header, error) {
	var u [8]uint32
	if err := binary.Read(r, binary.LittleEndian, &u); err != nil {
		return nil, fmt.Errorf("gmy: header: %w", err)
	}
	if u[0] != Magic {
		return nil, fmt.Errorf("gmy: bad magic %#x", u[0])
	}
	if u[1] != Version {
		return nil, fmt.Errorf("gmy: unsupported version %d", u[1])
	}
	h := &Header{
		Dims:      vec.I3{X: int(u[2]), Y: int(u[3]), Z: int(u[4])},
		BlockSize: int(u[5]),
		ModelQ:    int(u[6]),
	}
	nIolets := int(u[7])
	var fs [4]float64
	if err := binary.Read(r, binary.LittleEndian, &fs); err != nil {
		return nil, fmt.Errorf("gmy: header floats: %w", err)
	}
	h.Origin = vec.New(fs[0], fs[1], fs[2])
	h.H = fs[3]
	for i := 0; i < nIolets; i++ {
		var g [8]float64
		if err := binary.Read(r, binary.LittleEndian, &g); err != nil {
			return nil, fmt.Errorf("gmy: iolet %d: %w", i, err)
		}
		var flag uint32
		if err := binary.Read(r, binary.LittleEndian, &flag); err != nil {
			return nil, fmt.Errorf("gmy: iolet %d: %w", i, err)
		}
		h.Iolets = append(h.Iolets, geometry.Iolet{
			Center:   vec.New(g[0], g[1], g[2]),
			Normal:   vec.New(g[3], g[4], g[5]),
			Radius:   g[6],
			Pressure: g[7],
			IsInlet:  flag == 1,
		})
	}
	nb := h.NumBlocks()
	h.BlockFluid = make([]int32, nb)
	h.blockLen = make([]int32, nb)
	for b := 0; b < nb; b++ {
		var pair [2]uint32
		if err := binary.Read(r, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("gmy: block table: %w", err)
		}
		h.BlockFluid[b] = int32(pair[0])
		h.blockLen[b] = int32(pair[1])
	}
	return h, nil
}

// BlockPayloadLen returns the compressed payload length of block b.
func (h *Header) BlockPayloadLen(b int) int { return int(h.blockLen[b]) }

// DecodeBlock decompresses and parses one block payload.
func DecodeBlock(payload []byte, fluidCount, q int) ([]geometry.Site, error) {
	zr, err := zlib.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("gmy: zlib: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("gmy: decompress: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	br := bytes.NewReader(raw)
	sites := make([]geometry.Site, 0, fluidCount)
	for i := 0; i < fluidCount; i++ {
		s, err := decodeSite(br, q)
		if err != nil {
			return nil, fmt.Errorf("gmy: site %d: %w", i, err)
		}
		sites = append(sites, s)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("gmy: %d trailing bytes in block", br.Len())
	}
	return sites, nil
}

// Read parses a complete gmy stream back into a Domain. The model is
// chosen by the header's Q value.
func Read(r io.Reader) (*geometry.Domain, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	var model *lattice.Model
	switch h.ModelQ {
	case 19:
		model = lattice.D3Q19()
	case 15:
		model = lattice.D3Q15()
	default:
		return nil, fmt.Errorf("gmy: no model with Q=%d", h.ModelQ)
	}
	var all []geometry.Site
	for b := 0; b < h.NumBlocks(); b++ {
		n := int(h.BlockFluid[b])
		plen := int(h.blockLen[b])
		if n == 0 {
			if plen != 0 {
				return nil, fmt.Errorf("gmy: empty block %d has payload", b)
			}
			continue
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("gmy: block %d payload: %w", b, err)
		}
		sites, err := DecodeBlock(payload, n, h.ModelQ)
		if err != nil {
			return nil, err
		}
		all = append(all, sites...)
	}
	return AssembleDomain(h, model, all)
}

// AssembleDomain reconstructs a Domain from decoded site records. Sites
// may arrive in any order; they are sorted into canonical scan order
// (z, y, x ascending) to make round-trips exact.
func AssembleDomain(h *Header, model *lattice.Model, sites []geometry.Site) (*geometry.Domain, error) {
	return geometry.Reassemble(model, h.Dims, h.Origin, h.H, h.Iolets, sites)
}

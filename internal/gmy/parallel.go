package gmy

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/geometry"
	"repro/internal/par"
)

// Message tags for the read/redistribution phase.
const (
	tagBlockData = par.TagUser + 201
)

// InitialBalance assigns blocks to ranks using only the coarse fluid
// counts — the paper's "initial approximate load balance" performed
// before any detailed geometry is read. Blocks are walked in id order
// and greedily cut into contiguous runs of near-equal fluid volume.
func InitialBalance(blockFluid []int32, ranks int) []int32 {
	assign := make([]int32, len(blockFluid))
	total := int64(0)
	for _, c := range blockFluid {
		total += int64(c)
	}
	if ranks <= 1 || total == 0 {
		return assign
	}
	target := float64(total) / float64(ranks)
	rank, acc := 0, 0.0
	for b, c := range blockFluid {
		if acc >= target*float64(rank+1) && rank < ranks-1 {
			rank++
		}
		assign[b] = int32(rank)
		acc += float64(c)
	}
	return assign
}

// BalanceQuality returns max/mean fluid sites per rank for an
// assignment (1.0 = perfect).
func BalanceQuality(blockFluid []int32, assign []int32, ranks int) float64 {
	per := make([]int64, ranks)
	var total int64
	for b, c := range blockFluid {
		per[assign[b]] += int64(c)
		total += int64(c)
	}
	maxPer := int64(0)
	for _, p := range per {
		if p > maxPer {
			maxPer = p
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxPer) / (float64(total) / float64(ranks))
}

// ParallelRead performs the two-level read of section IV-B on a par
// communicator: every rank parses the (small) header and block table;
// only the first nReaders ranks decode block payloads, each covering a
// contiguous share of the file; readers then forward each block's
// still-compressed payload to the rank that owns it under the initial
// balance. Returns this rank's owned blocks as decoded site records
// plus the header and the block→rank assignment.
//
// file is the whole serialised stream, standing in for a file on a
// parallel filesystem every rank could open. nReaders controls "the
// balance between file I/O and distribution communication".
func ParallelRead(comm *par.Comm, file []byte, nReaders int) (*Header, []int32, map[int][]geometry.Site, error) {
	if nReaders < 1 {
		nReaders = 1
	}
	if nReaders > comm.Size() {
		nReaders = comm.Size()
	}
	h, err := ReadHeader(bytes.NewReader(file))
	if err != nil {
		return nil, nil, nil, err
	}
	nb := h.NumBlocks()
	assign := InitialBalance(h.BlockFluid, comm.Size())

	// Compute each block's absolute payload offset within the stream.
	headerLen := headerSize(h)
	offsets := make([]int, nb+1)
	offsets[0] = headerLen
	for b := 0; b < nb; b++ {
		offsets[b+1] = offsets[b] + int(h.blockLen[b])
	}

	// Reader r covers blocks [r*nb/nReaders, (r+1)*nb/nReaders).
	me := comm.Rank()
	owned := map[int][]geometry.Site{}
	type packet struct {
		blocks []int
		data   [][]byte
	}
	outgoing := make(map[int]*packet)
	if me < nReaders {
		lo := me * nb / nReaders
		hi := (me + 1) * nb / nReaders
		for b := lo; b < hi; b++ {
			if h.BlockFluid[b] == 0 {
				continue
			}
			payload := file[offsets[b]:offsets[b+1]]
			owner := int(assign[b])
			if owner == me {
				sites, err := DecodeBlock(payload, int(h.BlockFluid[b]), h.ModelQ)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("gmy: rank %d block %d: %w", me, b, err)
				}
				owned[b] = sites
				continue
			}
			p := outgoing[owner]
			if p == nil {
				p = &packet{}
				outgoing[owner] = p
			}
			p.blocks = append(p.blocks, b)
			p.data = append(p.data, payload)
		}
	}
	// Every rank learns how many packets to expect: readers announce
	// counts via an allreduce over a per-rank counter vector.
	expect := make([]float64, comm.Size())
	for owner := range outgoing {
		expect[owner]++
	}
	expect = comm.Allreduce(par.OpSum, expect)
	// Send packets: frame = u32 blockCount, then per block u32 id,
	// u32 len, payload bytes.
	for owner, p := range outgoing {
		var buf bytes.Buffer
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(p.blocks)))
		buf.Write(tmp[:])
		for i, b := range p.blocks {
			binary.LittleEndian.PutUint32(tmp[:], uint32(b))
			buf.Write(tmp[:])
			binary.LittleEndian.PutUint32(tmp[:], uint32(len(p.data[i])))
			buf.Write(tmp[:])
			buf.Write(p.data[i])
		}
		comm.SendBytes(owner, tagBlockData, buf.Bytes())
	}
	// Receive the expected number of packets.
	for i := 0; i < int(expect[me]); i++ {
		data, _ := comm.RecvBytes(par.AnySource, tagBlockData)
		r := bytes.NewReader(data)
		var tmp [4]byte
		if _, err := r.Read(tmp[:]); err != nil {
			return nil, nil, nil, err
		}
		count := int(binary.LittleEndian.Uint32(tmp[:]))
		for j := 0; j < count; j++ {
			if _, err := r.Read(tmp[:]); err != nil {
				return nil, nil, nil, err
			}
			b := int(binary.LittleEndian.Uint32(tmp[:]))
			if _, err := r.Read(tmp[:]); err != nil {
				return nil, nil, nil, err
			}
			plen := int(binary.LittleEndian.Uint32(tmp[:]))
			payload := make([]byte, plen)
			if _, err := r.Read(payload); err != nil {
				return nil, nil, nil, err
			}
			sites, err := DecodeBlock(payload, int(h.BlockFluid[b]), h.ModelQ)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("gmy: received block %d: %w", b, err)
			}
			owned[b] = sites
		}
	}
	return h, assign, owned, nil
}

// headerSize computes the byte length of the header + block table for a
// parsed header (used to locate block payload offsets).
func headerSize(h *Header) int {
	return 8*4 + // magic..nIolets u32s
		4*8 + // origin + h
		len(h.Iolets)*(8*8+4) + // iolet floats + flag
		h.NumBlocks()*8 // block table pairs
}

// SortedBlockIDs returns the keys of an owned-blocks map in ascending
// order, for deterministic iteration.
func SortedBlockIDs(owned map[int][]geometry.Site) []int {
	ids := make([]int, 0, len(owned))
	for b := range owned {
		ids = append(ids, b)
	}
	sort.Ints(ids)
	return ids
}

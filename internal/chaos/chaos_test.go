package chaos

import (
	"flag"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/leaktest"
)

// The flags turn a failure line back into a single-case run:
//
//	go test ./internal/chaos -run 'TestChaos$' -chaos-seed=S -chaos-at=K -chaos-kind=crash
var (
	chaosOps  = flag.Int("chaos-ops", 0, "cap on injected crash cases (0 = every op of the reference run)")
	chaosSeed = flag.Int64("chaos-seed", 1, "fault-injection seed")
	chaosAt   = flag.Int64("chaos-at", 0, "inject at exactly this op index (reproduction mode; 0 = sweep)")
	chaosKind = flag.String("chaos-kind", "crash", "fault kind: err, short, torn, crash")
)

func chaosConfig(t *testing.T) Config {
	t.Helper()
	kind, err := faultfs.ParseFaultKind(*chaosKind)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Seed: *chaosSeed, MaxCases: *chaosOps, At: *chaosAt, Kind: kind, Logf: t.Logf}
}

// TestChaos is the crash sweep: power cut at every counted I/O op of
// the reference run (or the -chaos-ops/-chaos-at subset), recovery
// verified for each.
func TestChaos(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	cfg := chaosConfig(t)
	if testing.Short() && cfg.MaxCases == 0 && cfg.At == 0 {
		cfg.MaxCases = 12
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: %d/%d cases fired over %d reference ops", rep.Fired, rep.Cases, rep.RefOps)
	if cfg.At == 0 && rep.Fired == 0 {
		t.Fatal("sweep injected faults but none fired; harness is not aiming at the I/O path")
	}
}

// kindSweep runs a bounded sweep of a non-crash fault kind; crash
// coverage is TestChaos's job.
func kindSweep(t *testing.T, kind faultfs.FaultKind) {
	t.Cleanup(leaktest.Check(t))
	cfg := chaosConfig(t)
	cfg.Kind = kind
	if cfg.At == 0 {
		cfg.MaxCases = 8
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.At == 0 && rep.Fired == 0 {
		t.Fatalf("no %s fault fired across %d cases", kind, rep.Cases)
	}
}

// TestChaosTransientErrors: a store that intermittently fails must
// degrade durability, never the computation.
func TestChaosTransientErrors(t *testing.T) { kindSweep(t, faultfs.FaultErr) }

// TestChaosShortWrites: interrupted writes land in temp files only;
// the atomic-rename discipline keeps every visible file whole.
func TestChaosShortWrites(t *testing.T) { kindSweep(t, faultfs.FaultShortWrite) }

// TestChaosENOSPC: a disk that fills mid-run must degrade durability —
// the job finishes bit-exact — and once space is freed the probe must
// restore persistence well enough to survive a power cut.
func TestChaosENOSPC(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	cfg := chaosConfig(t)
	if cfg.At == 0 {
		cfg.MaxCases = 8
	}
	rep, err := RunENOSPC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("chaos: %d/%d ENOSPC cases fired over %d reference ops", rep.Fired, rep.Cases, rep.RefOps)
	if cfg.At == 0 && rep.Fired == 0 {
		t.Fatalf("no ENOSPC fault fired across %d cases", rep.Cases)
	}
}

// TestChaosTornWrites: silent single-byte corruption must be *caught*
// (CRC on journal records, checksum verify on checkpoints) and fallen
// back from — never trusted.
func TestChaosTornWrites(t *testing.T) { kindSweep(t, faultfs.FaultTornWrite) }

// TestChaosHookPoints crashes at the named scheduling seams above the
// store (async checkpoint swap/write, journal append, recovery
// replay), including the crash-during-recovery double fault.
func TestChaosHookPoints(t *testing.T) {
	t.Cleanup(leaktest.Check(t))
	if err := RunHooks(Config{Seed: *chaosSeed, Logf: t.Logf}); err != nil {
		t.Fatal(err)
	}
}

package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/service"
	"repro/internal/service/store"
)

// RunHooks cuts power at each named crash point the service exposes
// (service.ChaosHook): mid journal append, at the async checkpoint
// swap, just before a full checkpoint write, just before a delta
// record write (hit 1 is the crash between the base and its first
// delta), between a full landing and the old chain's removal
// (mid-compaction), and in the middle of recovery replay itself. The
// op-index sweep in Run covers the store's I/O schedule; these cover
// the scheduling seams *above* the store, where an op-counter cannot
// aim (the async writer runs on its own goroutine, and recovery
// happens before any counted write).
func RunHooks(cfg Config) error {
	cfg.defaults()
	cfg.Kind = faultfs.FaultCrash // hooks model power cuts only
	ref, err := cfg.reference()
	if err != nil {
		return fmt.Errorf("chaos: reference run (seed=%d): %w", cfg.Seed, err)
	}
	// Each point is hit at its 1st and a later occurrence: the first
	// firing catches the setup path (first journal write, first
	// checkpoint), the later one steady state.
	for _, tc := range []struct {
		point string
		hit   int64
	}{
		{service.ChaosJournalAppend, 1},
		{service.ChaosJournalAppend, 4},
		{service.ChaosCheckpointSwap, 1},
		{service.ChaosCheckpointSwap, 2},
		{service.ChaosCheckpointWrite, 1},
		{service.ChaosCheckpointWrite, 2},
		{service.ChaosCheckpointDelta, 1},
		{service.ChaosCheckpointDelta, 2},
		{service.ChaosCheckpointCompact, 1},
		{service.ChaosCheckpointCompact, 2},
	} {
		if err := cfg.runHookCase(tc.point, tc.hit, ref); err != nil {
			return fmt.Errorf("chaos: crash at hook %s (hit %d, seed=%d): %w", tc.point, tc.hit, cfg.Seed, err)
		}
		cfg.Logf("chaos: hook %s hit %d passed", tc.point, tc.hit)
	}
	for _, hit := range []int64{1, 2} {
		if err := cfg.runRecoveryReplayCase(hit, ref); err != nil {
			return fmt.Errorf("chaos: crash at hook %s (hit %d, seed=%d): %w", service.ChaosRecoveryReplay, hit, cfg.Seed, err)
		}
		cfg.Logf("chaos: hook %s hit %d passed", service.ChaosRecoveryReplay, hit)
	}
	return nil
}

// crashAt builds a ChaosHook that cuts power the hit'th time point
// fires.
func crashAt(fsys *faultfs.Mem, point string, hit int64) service.ChaosHook {
	var n atomic.Int64
	return func(p, _ string) {
		if p == point && n.Add(1) == hit {
			fsys.CrashNow()
		}
	}
}

// runHookCase crashes at a hook point during a normal run, then
// verifies recovery exactly like an op-index case.
func (c Config) runHookCase(point string, hit int64, ref *reference) error {
	fsys := faultfs.NewMem(c.Seed)
	st, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return err
	}
	metrics := &service.Metrics{}
	opts := managerOptions(st, metrics)
	opts.ChaosHook = crashAt(fsys, point, hit)
	mgr := service.NewManagerOpts(opts)
	j, _, serr := runScenario(mgr, fsys, c.spec(), metrics)
	var id string
	if j != nil {
		id = j.ID
	}
	if serr != nil && !fsys.Crashed() {
		mgr.Close()
		return serr
	}
	mgr.Close()
	fsys.PowerCycle()
	return c.verifyRecovery(fsys, ref, id)
}

// runRecoveryReplayCase interrupts a run, then crashes again in the
// middle of the *recovery* that follows — the double-crash case — and
// requires the third boot to bring the job home.
func (c Config) runRecoveryReplayCase(hit int64, ref *reference) error {
	fsys := faultfs.NewMem(c.Seed)
	st, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return err
	}
	mgr := service.NewManagerOpts(managerOptions(st, nil))
	// A short job that finishes before the crash, so the replay loop has
	// two ids to walk: hit 1 crashes while replaying the finished one,
	// hit 2 while replaying the interrupted one.
	short := c.spec()
	short.Steps = 64
	helper, serr := mgr.Submit(short)
	if serr != nil {
		mgr.Close()
		return serr
	}
	deadline := time.Now().Add(waitLimit)
	for helper.State() != service.StateDone {
		if helper.State().Terminal() {
			return fmt.Errorf("helper job ended %s", helper.State())
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("helper job stuck at step %d", helper.Step())
		}
		time.Sleep(time.Millisecond)
	}
	j, serr := mgr.Submit(c.spec())
	if serr != nil {
		mgr.Close()
		return serr
	}
	// Run past a couple of checkpoints, then cut power mid-flight.
	for j.Step() < 2*32+5 && !j.State().Terminal() {
		if time.Now().After(deadline) {
			return fmt.Errorf("job stuck at step %d before first crash", j.Step())
		}
		time.Sleep(time.Millisecond)
	}
	fsys.CrashNow()
	mgr.Close()
	fsys.PowerCycle()

	// Boot #2 crashes during its own recovery replay.
	st2, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return fmt.Errorf("store did not reopen after power cut: %w", err)
	}
	opts2 := managerOptions(st2, nil)
	opts2.ChaosHook = crashAt(fsys, service.ChaosRecoveryReplay, hit)
	mgr2 := service.NewManagerOpts(opts2)
	mgr2.Close()
	if !fsys.Crashed() {
		return fmt.Errorf("recovery replay never reached hit %d", hit)
	}
	fsys.PowerCycle()

	// Boot #3 must recover everything.
	return c.verifyRecovery(fsys, ref, j.ID)
}

// Package chaos is the crash-consistency harness for the durable-job
// path: it runs a reference job to completion on a fault-injectable
// in-memory filesystem (internal/faultfs), then re-executes the same
// scenario over and over, cutting power (or injecting transient
// errors, short writes, or silent torn writes) at each counted I/O
// operation of the reference run, restarting the manager on whatever
// survived, and asserting the recovery invariants:
//
//   - the store reopens and replays without error: the recovered
//     checkpoint is the pre-crash one or a complete newer one, never a
//     torn hybrid (crash faults; media-corruption faults are instead
//     required to be *detected* and fallen back from);
//   - a job journaled terminal never regresses to running;
//   - an interrupted job re-runs to completion with final fields
//     bit-exact against the uninterrupted reference;
//   - no orphan temp file survives two recoveries.
//
// Every failure message carries the seed and op index; a failing case
// reproduces with
//
//	go test ./internal/chaos -run TestChaos -chaos-seed=S -chaos-at=K -chaos-kind=crash
//
// alone — all randomness (torn-write bytes, crash tearing) derives
// from the seed, and the op schedule from the scenario.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"time"

	"repro/internal/faultfs"
	"repro/internal/service"
	"repro/internal/service/store"
)

// Config parameterizes a chaos run.
type Config struct {
	// Seed drives all injected randomness. A failing (seed, op) pair is
	// a complete reproduction recipe.
	Seed int64
	// MaxCases caps how many fault points the sweep injects, spread
	// evenly over the reference run's ops. 0 sweeps every op.
	MaxCases int
	// At pins the sweep to one op index (reproduction mode). 0 = sweep.
	At int64
	// Kind is the injected fault (default FaultCrash).
	Kind faultfs.FaultKind
	// Steps is the scenario length (default 192: six checkpoints at
	// cadence 32, final snapshot at the last step).
	Steps int
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

// Report summarizes a sweep.
type Report struct {
	RefOps int64 // counted I/O ops in the reference run
	Cases  int   // fault points exercised
	Fired  int   // cases whose fault actually fired
}

const (
	storeRoot = "data"
	pauseAt   = 48 // scenario pauses/resumes once the job passes this step
	waitLimit = 120 * time.Second
	// chainFullEvery makes every other checkpoint write a full one, so
	// each scenario exercises the whole delta-chain lifecycle — base,
	// delta record, compaction — and the op sweep lands power cuts
	// inside delta writes and chain drops, not only full replaces.
	chainFullEvery = 2
)

// managerOptions is the shared manager configuration of every chaos
// run: reference, fault cases and recovery boots must persist (and
// therefore re-read) checkpoints identically.
func managerOptions(st *store.Store, metrics *service.Metrics) service.Options {
	return service.Options{
		Workers: 1, QueueCap: 4, Store: st, Metrics: metrics,
		CheckpointFullEvery: chainFullEvery,
		// The write-budget governor is off: chaos scenarios count on
		// every cadence write landing so the op sweep's crash points
		// stay deterministic.
		CheckpointBudget: -1,
	}
}

func (c *Config) defaults() {
	if c.Kind == faultfs.FaultNone {
		c.Kind = faultfs.FaultCrash
	}
	if c.Steps <= 0 {
		c.Steps = 192
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// spec is the scenario workload: deterministic (no steering beyond the
// scripted pause/resume), several checkpoints, and a snapshot cadence
// that divides Steps so the final fields are captured for the
// bit-exact comparison.
func (c Config) spec() service.JobSpec {
	return service.JobSpec{
		Preset: "pipe", Steps: c.Steps, VizEvery: -1,
		SnapshotEvery: c.Steps / 3, CheckpointEvery: 32,
	}
}

// repro renders the one-line reproduction recipe embedded in every
// failure.
func (c Config) repro(op int64) string {
	return fmt.Sprintf("go test ./internal/chaos -run 'TestChaos$' -chaos-seed=%d -chaos-at=%d -chaos-kind=%s",
		c.Seed, op, c.Kind)
}

// reference holds the uninterrupted run's observables.
type reference struct {
	ops                int64
	id                 string
	step               int
	rho, ux, uy, uz    []float64
	checkpointsWritten int64
}

// Run executes the reference run and the fault sweep, returning on the
// first violated invariant.
func Run(cfg Config) (Report, error) {
	cfg.defaults()
	ref, err := cfg.reference()
	if err != nil {
		return Report{}, fmt.Errorf("chaos: reference run (seed=%d): %w", cfg.Seed, err)
	}
	cfg.Logf("chaos: reference run: %d I/O ops, job %s done at step %d, %d checkpoints",
		ref.ops, ref.id, ref.step, ref.checkpointsWritten)

	ks := cfg.sweepPoints(ref.ops)

	rep := Report{RefOps: ref.ops}
	for i, k := range ks {
		fired, err := cfg.runCase(k, ref)
		if err != nil {
			return rep, fmt.Errorf("chaos: case %s at op %d/%d (seed=%d) failed: %w\nreproduce: %s",
				cfg.Kind, k, ref.ops, cfg.Seed, err, cfg.repro(k))
		}
		rep.Cases++
		if fired {
			rep.Fired++
		}
		if (i+1)%25 == 0 || i == len(ks)-1 {
			cfg.Logf("chaos: %d/%d %s cases passed (%d fired)", i+1, len(ks), cfg.Kind, rep.Fired)
		}
	}
	return rep, nil
}

// sweepPoints picks the op indices a sweep injects at: the pinned -At
// index, the midpoint for MaxCases=1, MaxCases points spread evenly
// across [1, ops], or every op.
func (c Config) sweepPoints(ops int64) []int64 {
	var ks []int64
	switch {
	case c.At > 0:
		ks = []int64{c.At}
	case c.MaxCases == 1:
		ks = []int64{(ops + 1) / 2}
	case c.MaxCases > 1 && int64(c.MaxCases) < ops:
		for i := 0; i < c.MaxCases; i++ {
			k := 1 + int64(i)*(ops-1)/int64(c.MaxCases-1)
			if n := len(ks); n == 0 || ks[n-1] != k {
				ks = append(ks, k)
			}
		}
	default:
		for k := int64(1); k <= ops; k++ {
			ks = append(ks, k)
		}
	}
	return ks
}

// reference runs the scenario with no faults and captures the op count
// and final fields. A qualifying reference needs at least two durable
// checkpoint writes and at least one real pause/resume; the scheduler
// can starve the scripted pause on a loaded box, so non-qualifying
// runs are discarded and retried on a fresh filesystem — the solver
// is deterministic, so every attempt produces bit-identical fields,
// and the op schedule the sweep walks is simply that of the attempt
// that qualified.
func (c Config) reference() (*reference, error) {
	const attempts = 10
	var last error
	for i := 1; i <= attempts; i++ {
		ref, err := c.referenceOnce()
		if err == nil {
			return ref, nil
		}
		last = err
		c.Logf("chaos: reference attempt %d/%d did not qualify: %v", i, attempts, err)
	}
	return nil, last
}

func (c Config) referenceOnce() (*reference, error) {
	fsys := faultfs.NewMem(c.Seed)
	st, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return nil, err
	}
	metrics := &service.Metrics{}
	mgr := service.NewManagerOpts(managerOptions(st, metrics))
	defer mgr.Close()
	j, paused, err := runScenario(mgr, fsys, c.spec(), metrics)
	if err != nil {
		return nil, err
	}
	if j == nil || j.State() != service.StateDone {
		return nil, fmt.Errorf("reference job did not finish cleanly")
	}
	snap, _ := j.LatestSnapshot()
	if snap == nil || snap.Step != c.Steps {
		return nil, fmt.Errorf("reference run has no final snapshot at step %d", c.Steps)
	}
	ref := &reference{
		id:   j.ID,
		step: snap.Step,
		rho:  append([]float64(nil), snap.Field.Rho...),
		ux:   append([]float64(nil), snap.Field.Ux...),
		uy:   append([]float64(nil), snap.Field.Uy...),
		uz:   append([]float64(nil), snap.Field.Uz...),
	}
	mgr.Close() // flush the async checkpoint writer before counting ops
	ref.ops = fsys.Ops()
	ref.checkpointsWritten = metrics.CheckpointsWritten.Load()
	if !paused {
		return nil, fmt.Errorf("scripted pause/resume never landed (job outran the monitor)")
	}
	if ref.checkpointsWritten < 2 {
		return nil, fmt.Errorf("scenario wrote %d checkpoints, need >= 2 for a meaningful sweep", ref.checkpointsWritten)
	}
	return ref, nil
}

// runCase injects one fault at op k, runs the scenario on a fresh
// filesystem, then pulls power and verifies recovery. It reports
// whether the fault actually fired (a case beyond this run's op count
// degenerates to a clean power cut, which is still worth verifying).
func (c Config) runCase(k int64, ref *reference) (bool, error) {
	fsys := faultfs.NewMem(c.Seed)
	fsys.Inject(faultfs.Fault{Op: k, Kind: c.Kind})

	var id string
	st, err := store.OpenFS(fsys, storeRoot)
	if err == nil {
		metrics := &service.Metrics{}
		mgr := service.NewManagerOpts(managerOptions(st, metrics))
		j, _, serr := runScenario(mgr, fsys, c.spec(), metrics)
		if j != nil {
			id = j.ID
		}
		if serr != nil && len(fsys.Fired()) == 0 {
			mgr.Close()
			return false, fmt.Errorf("scenario failed with no fault fired: %w", serr)
		}
		// Transient faults (err/short/torn) must never perturb the
		// computation: the store degrades, the job still finishes with
		// reference-exact fields.
		if c.Kind != faultfs.FaultCrash && j != nil && !fsys.Crashed() {
			if j.State() != service.StateDone {
				mgr.Close()
				return false, fmt.Errorf("job ended %s under a %s store fault; store faults must not fail jobs",
					j.State(), c.Kind)
			}
			if err := compareFinal(j, ref); err != nil {
				mgr.Close()
				return false, fmt.Errorf("run under %s fault diverged: %w", c.Kind, err)
			}
		}
		// SIGKILL: no store write issued by Close survives a crashed fs,
		// and for live filesystems the PowerCycle below cuts power on
		// whatever Close did not get to fsync.
		mgr.Close()
	} else if len(fsys.Fired()) == 0 {
		return false, fmt.Errorf("store open failed with no fault fired: %w", err)
	}

	fsys.PowerCycle()
	// A fault that did not fire during the run is still armed and can
	// hit recovery itself (this run's op schedule can be shorter than
	// the reference's). A crash there is the double-crash case: pull
	// power again and re-verify — recovery must be idempotent under
	// repeated interruption. A transient fault there (err/short firing
	// in, say, the recovery-time mkdir) is an ordinary retriable store
	// error, not a failure: the operator restarts, the spent fault
	// cannot fire again, so verify once more on the now-clean store.
	for attempt := 0; ; attempt++ {
		fired := len(fsys.Fired())
		err := c.verifyRecovery(fsys, ref, id)
		if err == nil {
			break
		}
		if attempt < 3 {
			if fsys.Crashed() {
				fsys.PowerCycle()
				continue
			}
			if len(fsys.Fired()) > fired {
				continue
			}
		}
		return len(fsys.Fired()) > 0, err
	}
	return len(fsys.Fired()) > 0, nil
}

// verifyRecovery restarts the service on the surviving tree (twice)
// and asserts every recovery invariant. id may be empty when the fault
// landed before submission completed.
func (c Config) verifyRecovery(fsys *faultfs.Mem, ref *reference, id string) error {
	st, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return fmt.Errorf("store did not reopen after power cut: %w", err)
	}
	// Atomicity: a surviving checkpoint either verifies or is
	// *detected* — Checkpoint must never serve bytes alongside a
	// verification error. Detection (not prevention) is the contract
	// for every fault kind, not just torn writes: the store
	// deliberately skips the data fsync on a job's first full
	// checkpoint and on every delta, and a crash-reverted rename can
	// re-expose that never-synced first full even after later durable
	// overwrites — so a clean power cut may legally leave a
	// detectably-invalid file. What recovery owes us instead is
	// asserted below: the job falls back to an older verified point or
	// a fresh start and still re-runs to reference-exact fields.
	if id != "" {
		if got, _, err := st.Checkpoint(id); err != nil && got != nil {
			return fmt.Errorf("checkpoint served %d bytes alongside verification error: %w", len(got), err)
		}
	}
	var preTerminal service.JobState
	if id != "" {
		// The newest lifecycle record may still sit in the journal, not
		// yet materialized into state.json — the journal wins.
		rec, err := st.State(id)
		if jrec, ok := store.JournalSnapshot(fsys, storeRoot)[id]; ok {
			rec, err = jrec, nil
		}
		if err == nil && service.JobState(rec.State).Terminal() {
			preTerminal = service.JobState(rec.State)
		}
	}

	metrics := &service.Metrics{}
	mgr := service.NewManagerOpts(managerOptions(st, metrics))
	defer mgr.Close()
	// No CheckpointsInvalid assertion here even for pure power cuts:
	// the elided first-full/delta fsyncs mean a clean crash can tear a
	// checkpoint that recovery then rightly flags invalid and falls
	// back from — that flag firing is the detection contract working,
	// not the atomic-write path failing.
	if id == "" {
		return c.verifySecondRecovery(fsys, "")
	}
	j, err := mgr.Get(id)
	if err != nil {
		// The job is allowed to be gone only if it was never durably
		// journaled (crash before the submit response) or its journal
		// record was detectably corrupted by a torn write.
		if c.Kind == faultfs.FaultTornWrite || !stateDurable(fsys, id) {
			return c.verifySecondRecovery(fsys, id)
		}
		return fmt.Errorf("durably journaled job %s missing after recovery: %v", id, err)
	}
	if preTerminal != "" {
		// Terminal records never regress.
		if got := j.Info().State; got != preTerminal {
			return fmt.Errorf("job journaled %s came back as %s; terminal states must not regress", preTerminal, got)
		}
		if preTerminal == service.StateDone && j.Info().Step != c.Steps {
			return fmt.Errorf("done job recovered at step %d, want %d", j.Info().Step, c.Steps)
		}
		return c.verifySecondRecovery(fsys, id)
	}
	// Interrupted: the job re-runs (possibly from a checkpoint) and must
	// end bit-exact with the uninterrupted reference.
	resumedFrom := j.Info().ResumedFromStep
	deadline := time.Now().Add(waitLimit)
	for !j.State().Terminal() {
		if time.Now().After(deadline) {
			return fmt.Errorf("recovered job stuck in %s", j.State())
		}
		if j.State() == service.StatePaused {
			// A job journaled paused recovers paused — that persistence
			// is the contract, so resume it to drive the case to its
			// terminal-state invariants.
			_ = mgr.Resume(context.Background(), j)
		}
		time.Sleep(time.Millisecond)
	}
	if j.State() != service.StateDone {
		return fmt.Errorf("recovered job ended %s (%s), resumed from %d", j.State(), j.Info().Error, resumedFrom)
	}
	if err := compareFinal(j, ref); err != nil {
		return fmt.Errorf("resume from step %d diverged: %w", resumedFrom, err)
	}
	return c.verifySecondRecovery(fsys, id)
}

// verifySecondRecovery reopens the store once more (the "two
// recoveries" of the orphan-temp invariant) and checks the tree is
// clean: no orphan temp files, and the job's checkpoint chain — now
// past the open-time stale-delta sweep — still verifies end to end.
func (c Config) verifySecondRecovery(fsys *faultfs.Mem, id string) error {
	st, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return fmt.Errorf("second recovery failed to open store: %w", err)
	}
	stale, err := fsys.Glob(storeRoot + "/jobs/*/*.tmp-*")
	if err != nil {
		return err
	}
	if len(stale) != 0 {
		return fmt.Errorf("orphan temp files survived two recoveries: %v", stale)
	}
	if id != "" {
		// A verification error here is the detection contract, not a
		// failure: the store's elided first-full/delta fsyncs mean a
		// power cut can leave a detectably-torn chain behind (most
		// visibly for a job journaled terminal before the cut, whose
		// checkpoint nothing will ever rewrite). What must hold is that
		// verification stays deterministic across recoveries — the
		// chain cannot flip from invalid to silently served, and an
		// interrupted job's resume path already proved above that it
		// falls back rather than consuming it.
		if _, err := st.VerifyCheckpoint(id); err != nil && !errors.Is(err, fs.ErrNotExist) {
			if _, _, cerr := st.Checkpoint(id); cerr == nil {
				return fmt.Errorf("chain failed verification (%v) but Checkpoint served it anyway", err)
			}
		}
	}
	return nil
}

// stateDurable reports whether the job's state record survived the
// power cut — the line between "remnant the recovery may drop" and
// "journaled job that must come back". With group commit the record
// can live in either home: the materialized state.json or the intact
// prefix of journal.wal.
func stateDurable(fsys *faultfs.Mem, id string) bool {
	if _, err := fsys.ReadFile(storeRoot + "/jobs/" + id + "/state.json"); err == nil {
		return true
	}
	_, ok := store.JournalSnapshot(fsys, storeRoot)[id]
	return ok
}

// compareFinal asserts the job's final snapshot is bit-exact against
// the reference fields.
func compareFinal(j *service.Job, ref *reference) error {
	snap, _ := j.LatestSnapshot()
	if snap == nil {
		return fmt.Errorf("no final snapshot")
	}
	if snap.Step != ref.step {
		return fmt.Errorf("final snapshot at step %d, reference at %d", snap.Step, ref.step)
	}
	if len(snap.Field.Rho) != len(ref.rho) {
		return fmt.Errorf("field size %d, reference %d", len(snap.Field.Rho), len(ref.rho))
	}
	for i := range ref.rho {
		if snap.Field.Rho[i] != ref.rho[i] || snap.Field.Ux[i] != ref.ux[i] ||
			snap.Field.Uy[i] != ref.uy[i] || snap.Field.Uz[i] != ref.uz[i] {
			return fmt.Errorf("fields differ at site %d", i)
		}
	}
	return nil
}

// runScenario submits the workload and drives it to a terminal state,
// guaranteeing at least two durable checkpoint writes and at least one
// pause/resume along the way. The async checkpoint writer coalesces
// under load and a terminal state discards its pending buffer, so
// without scripted drains the number of durable checkpoints would be
// scheduler timing, not scenario structure — and on a single-CPU box
// the monitor goroutine observes the step counter only at preemption
// granularity (jumps of 50+ steps), so step thresholds alone cannot be
// hit. Instead: park the solver once past the first checkpoint
// cadence and drain one write, then advance in pause/resume bursts —
// a queued pause parks the solver at the next steering boundary, at
// most 16 steps away — until a burst crosses the next cadence and its
// deliver drains as the second write. It returns as soon as the
// filesystem crashes (the injected power cut: from that instant the
// process is as good as dead). A nil job with nil error means
// submission itself was broken by a fault — the caller checks Fired.
//
// The scheduler can still defeat the script: on a loaded single-CPU
// box the monitor goroutine may not run even once before the job
// finishes, in which case no pause lands and the writer coalesces
// everything into one write. That is reported, not raced against:
// paused says whether a pause/resume actually happened, and the
// caller decides whether this run qualifies (reference retries until
// one does; fault cases take whatever the scheduler gave them).
func runScenario(mgr *service.Manager, fsys *faultfs.Mem, spec service.JobSpec, metrics *service.Metrics) (j *service.Job, paused bool, err error) {
	j, err = mgr.Submit(spec)
	if err != nil {
		return nil, false, nil // legitimate only when a fault fired; caller verifies
	}
	const cadence = 32 // spec().CheckpointEvery
	deadline := time.Now().Add(waitLimit)
	stuck := func() error {
		return fmt.Errorf("scenario stuck: job %s in %s at step %d", j.ID, j.State(), j.Step())
	}
	done := func() bool { return fsys.Crashed() || j.State().Terminal() }
	// Busy-yield until the condition holds: the whole scenario lasts
	// tens of milliseconds, and timer granularity on a loaded machine
	// is far coarser than that.
	waitFor := func(cond func() bool) error {
		for i := 0; !cond(); i++ {
			if i%1024 == 1023 && time.Now().After(deadline) {
				return stuck()
			}
			runtime.Gosched()
		}
		return nil
	}
	parked := func() bool { return done() || j.State() != service.StateRunning }
	// The writer gets the CPU only while the solver is parked; injected
	// faults can legitimately eat a write, hence the cap.
	drainTo := func(target int64) {
		cap := time.Now().Add(2 * time.Second)
		for metrics.CheckpointsWritten.Load() < target && !fsys.Crashed() && time.Now().Before(cap) {
			runtime.Gosched()
		}
	}

	// Park the solver once it is past the first checkpoint cadence (the
	// first observation of the step counter may already be far past it)
	// and drain the first write: at least one deliver is behind us.
	if err := waitFor(func() bool { return done() || int64(j.Step()) >= pauseAt }); err != nil {
		return j, false, err
	}
	if done() {
		return j, false, nil
	}
	if err := mgr.Pause(j); err == nil {
		paused = true
		if err := waitFor(parked); err != nil {
			return j, paused, err
		}
		drainTo(1)
		prev := int64(j.Step())
		// Burst until a second write lands: each resume advances the
		// solver at most one steering boundary (16 steps) before the
		// queued pause parks it again, so within two bursts the run
		// crosses a checkpoint cadence and the fresh deliver drains
		// while parked. Steps are deterministic, so "did this burst
		// cross a cadence" is computed, not raced.
		for metrics.CheckpointsWritten.Load() < 2 && !done() {
			if time.Now().After(deadline) {
				return j, paused, stuck()
			}
			if err := mgr.Resume(context.Background(), j); err != nil {
				break
			}
			if err := mgr.Pause(j); err != nil {
				break
			}
			if err := waitFor(parked); err != nil {
				return j, paused, err
			}
			cur := int64(j.Step())
			if cur/cadence > prev/cadence {
				drainTo(2)
			}
			prev = cur
		}
		if j.State() == service.StatePaused {
			_ = mgr.Resume(context.Background(), j)
		}
	}
	if err := waitFor(done); err != nil {
		return j, paused, err
	}
	return j, paused, nil
}

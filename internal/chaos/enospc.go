package chaos

import (
	"fmt"
	"time"

	"repro/internal/faultfs"
	"repro/internal/service"
	"repro/internal/service/store"
)

// enospcWait bounds the degrade-observation, probe-restore and
// re-journal polls of each ENOSPC case. Generous because a loaded box
// schedules the probe goroutine at preemption granularity.
const enospcWait = 30 * time.Second

// RunENOSPC is the disk-full sweep: at each selected op index the
// in-memory disk fills — and stays full, unlike the one-shot fault
// kinds — until the harness frees space. Each case asserts the
// graceful-degradation contract end to end:
//
//   - the job still finishes StateDone with fields bit-exact against
//     the uninterrupted reference (store faults must not fail jobs);
//   - the manager actually entered degraded mode while the disk was
//     full (the fault was felt, not silently swallowed);
//   - after space is freed the probe restores durability on its own,
//     with no operator call into the manager;
//   - the restored store is durable for real: after a power cut and
//     restart the job accepted under disk pressure is still there,
//     terminal at its final step.
func RunENOSPC(cfg Config) (Report, error) {
	cfg.defaults()
	cfg.Kind = faultfs.FaultENOSPC
	ref, err := cfg.reference()
	if err != nil {
		return Report{}, fmt.Errorf("chaos: reference run (seed=%d): %w", cfg.Seed, err)
	}
	cfg.Logf("chaos: reference run: %d I/O ops, job %s done at step %d", ref.ops, ref.id, ref.step)

	ks := cfg.sweepPoints(ref.ops)
	rep := Report{RefOps: ref.ops}
	for i, k := range ks {
		fired, err := cfg.runENOSPCCase(k, ref)
		if err != nil {
			return rep, fmt.Errorf("chaos: case %s at op %d/%d (seed=%d) failed: %w\nreproduce: %s",
				cfg.Kind, k, ref.ops, cfg.Seed, err, cfg.repro(k))
		}
		rep.Cases++
		if fired {
			rep.Fired++
		}
		if (i+1)%25 == 0 || i == len(ks)-1 {
			cfg.Logf("chaos: %d/%d %s cases passed (%d fired)", i+1, len(ks), cfg.Kind, rep.Fired)
		}
	}
	return rep, nil
}

// runENOSPCCase fills the disk at op k, runs the scenario through the
// degraded episode, frees space, and verifies the recovery half of the
// contract. Reports whether the fault fired (a k beyond this run's op
// count degenerates to a clean run).
func (c Config) runENOSPCCase(k int64, ref *reference) (bool, error) {
	fsys := faultfs.NewMem(c.Seed)
	fsys.Inject(faultfs.Fault{Op: k, Kind: faultfs.FaultENOSPC})

	st, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		// The disk filled while the store itself was coming up; the
		// daemon cannot start at all. The only obligation is that
		// freeing space makes the next boot succeed.
		if len(fsys.Fired()) == 0 {
			return false, fmt.Errorf("store open failed with no fault fired: %w", err)
		}
		fsys.SetFull(false)
		if _, err := store.OpenFS(fsys, storeRoot); err != nil {
			return true, fmt.Errorf("store open still failing after space was freed: %w", err)
		}
		return true, nil
	}
	metrics := &service.Metrics{}
	opts := managerOptions(st, metrics)
	// Probe aggressively: each case waits for the restore transition.
	opts.StoreProbeEvery = 2 * time.Millisecond
	mgr := service.NewManagerOpts(opts)
	closed := false
	defer func() {
		if !closed {
			mgr.Close()
		}
	}()

	j, _, serr := runScenario(mgr, fsys, c.spec(), metrics)
	fired := len(fsys.Fired()) > 0
	if serr != nil {
		return fired, fmt.Errorf("scenario failed under disk-full: %w", serr)
	}
	if j == nil {
		if !fired {
			return false, fmt.Errorf("submission failed with no fault fired")
		}
		return fired, fmt.Errorf("submission rejected under disk-full; degraded mode must accept jobs non-durably")
	}
	// Core invariant: a full disk degrades durability, never the
	// computation.
	if j.State() != service.StateDone {
		return fired, fmt.Errorf("job ended %s under disk-full; store faults must not fail jobs", j.State())
	}
	if err := compareFinal(j, ref); err != nil {
		return fired, fmt.Errorf("run under disk-full diverged: %w", err)
	}
	if !fired {
		// The run issued fewer ops than the reference and the fault
		// never armed: nothing further to verify.
		return false, nil
	}

	// The disk is still full (the fault is sticky) and the terminal
	// persist must have tripped the degrader by now — poll briefly,
	// since the failing write is asynchronous to job completion.
	if err := waitCond(enospcWait, func() bool { return metrics.StoreDegradedTotal.Load() > 0 }); err != nil {
		return true, fmt.Errorf("disk-full fault fired but the store never degraded")
	}

	// Free space: the probe must notice on its own and re-enable
	// durability, then re-journal the episode's survivors.
	fsys.SetFull(false)
	if err := waitCond(enospcWait, func() bool { return metrics.StoreDegraded.Load() == 0 }); err != nil {
		return true, fmt.Errorf("store still degraded %v after space was freed; probe did not restore", enospcWait)
	}
	if err := waitCond(enospcWait, func() bool { return stateDurable(fsys, j.ID) }); err != nil {
		return true, fmt.Errorf("job %s not re-journaled after restore; degraded-era state stayed volatile", j.ID)
	}
	id, wantStep := j.ID, c.Steps
	mgr.Close()
	closed = true

	// Durable means power-cut durable: restart on whatever was synced
	// and the job accepted under disk pressure must come back terminal.
	fsys.PowerCycle()
	st2, err := store.OpenFS(fsys, storeRoot)
	if err != nil {
		return true, fmt.Errorf("store did not reopen after restore + power cut: %w", err)
	}
	mgr2 := service.NewManagerOpts(managerOptions(st2, &service.Metrics{}))
	defer mgr2.Close()
	j2, err := mgr2.Get(id)
	if err != nil {
		return true, fmt.Errorf("job %s accepted under disk-full vanished after restore + restart: %v", id, err)
	}
	if got := j2.Info(); got.State != service.StateDone || got.Step != wantStep {
		return true, fmt.Errorf("job recovered as %s at step %d, want %s at %d",
			got.State, got.Step, service.StateDone, wantStep)
	}
	return true, nil
}

// waitCond polls cond until it holds or the budget expires.
func waitCond(budget time.Duration, cond func() bool) error {
	deadline := time.Now().Add(budget)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("condition not met within %v", budget)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

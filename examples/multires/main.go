// Multi-resolution exploration — §V of the paper: cache the simulation
// fields in an octree, then explore them the way an interactive
// steering client would: start from a coarse context view, pick a
// region of interest (the aneurysm sac), and refine only there,
// comparing the data volume each request ships.
package main

import (
	"fmt"
	"log"

	"repro/internal/geometry"
	"repro/internal/lattice"
	"repro/internal/lb"
	"repro/internal/octree"
	"repro/internal/vec"
)

func main() {
	dom, err := geometry.Voxelise(geometry.Aneurysm(20, 3.5, 5), 1.0, lattice.D3Q19())
	if err != nil {
		log.Fatal(err)
	}
	solver, err := lb.New(dom, lb.Params{Tau: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	solver.Advance(600)
	rho, ux, uy, uz, wss := solver.Fields(nil, nil, nil, nil, nil)

	tree, err := octree.Build(dom, octree.Fields{Rho: rho, Ux: ux, Uy: uy, Uz: uz, WSS: wss})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("octree over %d fluid sites: %d levels\n", dom.NumSites(), tree.Depth())
	for l := 0; l < tree.Depth(); l++ {
		fmt.Printf("  level %d: %6d cells (resolution 1/%g)\n",
			l, tree.NodeCount(l), octree.LevelResolution(l))
	}

	full := octree.DataVolume(tree.Level(0))
	fmt.Printf("\nfull-resolution extraction: %d bytes\n", full)

	// Step 1: the context view — everything at a coarse level.
	ctxLevel := 3
	if ctxLevel >= tree.Depth() {
		ctxLevel = tree.Depth() - 1
	}
	ctx := tree.Level(ctxLevel)
	fmt.Printf("context view (level %d): %d cells, %d bytes (%.1f%% of full)\n",
		ctxLevel, len(ctx), octree.DataVolume(ctx),
		100*float64(octree.DataVolume(ctx))/float64(full))

	// Step 2: the user outlines the sac as the region of interest.
	// Find it as the region of maximal mean WSS at the context level.
	var hot *octree.Node
	for _, n := range ctx {
		if hot == nil || n.MaxWSS > hot.MaxWSS {
			hot = n
		}
	}
	roiBox := hot.Box().Expand(2)
	fmt.Printf("\nROI chosen around the peak-WSS context cell at %v\n", hot.Origin())

	// Step 3: context + detail query.
	nodes, err := tree.Query(octree.ROI{Box: roiBox, DetailLevel: 0, ContextLevel: ctxLevel})
	if err != nil {
		log.Fatal(err)
	}
	vol := octree.DataVolume(nodes)
	fmt.Printf("context+detail query: %d cells, %d bytes (%.1f%% of full)\n",
		len(nodes), vol, 100*float64(vol)/float64(full))
	if octree.CoverCount(nodes) != dom.NumSites() {
		log.Fatalf("query cover mismatch: %d vs %d sites", octree.CoverCount(nodes), dom.NumSites())
	}

	// Step 4: sample the reduced representation where the detail is.
	probe := hot.Origin().Add(vec.NewI(hot.Size()/2, hot.Size()/2, hot.Size()/2))
	if u, ok := tree.SampleVelocity(probe, 0); ok {
		fmt.Printf("\nvelocity sampled from the hierarchy at %v: (%.4f, %.4f, %.4f)\n",
			probe, u.X, u.Y, u.Z)
	}
	fmt.Println("\nthe reduced stream is what an exascale run would ship to the")
	fmt.Println("steering client instead of the raw fields (paper, §V).")
}

// Streamline visualisation — reproduces Fig. 4(b): inlet-seeded
// streamlines through the aneurysm, coloured by flow speed over a
// faint density context volume, written as streamlines.png/ppm. Also
// demonstrates the unsteady observables (pathlines, streaklines) via
// the particle tracer.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/geometry"
	"repro/internal/lattice"
	"repro/internal/lb"
	"repro/internal/viz"
)

func main() {
	img, err := experiments.Figure4b(experiments.FigureConfig{Steps: 800, W: 320, H: 240})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"streamlines.png", "streamlines.ppm"} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if name == "streamlines.png" {
			err = img.EncodePNG(f)
		} else {
			err = img.EncodePPM(f)
		}
		cerr := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Printf("wrote %s (%dx%d)\n", name, img.W, img.H)
	}

	// Pathlines and streaklines from the particle tracer: release dye
	// at the inlet every 5 steps while the flow runs.
	dom, err := geometry.Voxelise(geometry.Aneurysm(20, 3.5, 5), 1.0, lattice.D3Q19())
	if err != nil {
		log.Fatal(err)
	}
	solver, err := lb.New(dom, lb.Params{Tau: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	solver.Advance(600)
	emitters := viz.SeedsAcrossInlet(dom, 6)
	tracer := viz.NewTracer(emitters, 5)
	for i := 0; i < 120; i++ {
		solver.Advance(2)
		rho, ux, uy, uz, wss := solver.Fields(nil, nil, nil, nil, nil)
		f := &field.Field{Dom: dom, Rho: rho, Ux: ux, Uy: uy, Uz: uz, WSS: wss}
		if err := tracer.Step(f); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nparticle tracer after 120 in situ passes: %d live particles,\n", tracer.NumParticles())
	fmt.Printf("%d pathlines, %d streaklines (dye filaments from the inlet)\n",
		len(tracer.Pathlines()), len(tracer.Streaklines()))
	longest := 0
	for _, s := range tracer.Streaklines() {
		if len(s.Points) > longest {
			longest = len(s.Points)
		}
	}
	fmt.Printf("longest streakline spans %d released particles\n", longest)
}

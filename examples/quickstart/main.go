// Quickstart: simulate pressure-driven flow in a straight vessel and
// verify the solver against the analytic Poiseuille profile — the
// smallest complete use of the library: geometry → voxelise → solve →
// extract fields.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/geometry"
	"repro/internal/lattice"
	"repro/internal/lb"
)

func main() {
	// 1. A synthetic vessel: a straight pipe, radius 5, length 30, with
	//    a pressure inlet at z=0 and an outlet at z=30.
	const radius, length = 5.0, 30.0
	vessel := geometry.Pipe(length, radius)

	// 2. Voxelise onto a D3Q19 lattice with unit spacing.
	dom, err := geometry.Voxelise(vessel, 1.0, lattice.D3Q19())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("voxelised %q: %d fluid sites (%.1f%% of the bounding lattice)\n",
		vessel.Name, dom.NumSites(), 100*dom.FluidFraction())

	// 3. Run the sparse lattice-Boltzmann solver to steady state.
	solver, err := lb.New(dom, lb.Params{Tau: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	const steps = 3000
	solver.Advance(steps)
	fmt.Printf("advanced %d steps; max speed %.4f (lattice units), mass %.1f\n",
		steps, solver.MaxSpeed(), solver.TotalMass())

	// 4. Compare the mid-plane axial velocity with the analytic
	//    Poiseuille solution u(r) = G (R² - r²) / (4ν).
	G := dom.Model.Cs2 * (solver.IoletDensity(0) - solver.IoletDensity(1)) / length
	nu := solver.Viscosity()
	uMax := G * radius * radius / (4 * nu)
	fmt.Printf("\n  r     u_z(sim)   u_z(analytic)\n")
	zMid := length / 2
	printed := map[int]bool{}
	for i, site := range dom.Sites {
		w := dom.World(site.Pos)
		if math.Abs(w.Z-zMid) > 0.55 || math.Abs(w.Y) > 0.55 || w.X < 0 {
			continue
		}
		r := int(math.Round(w.X))
		if printed[r] {
			continue
		}
		printed[r] = true
		_, _, uz := solver.Velocity(i)
		want := uMax * (1 - w.X*w.X/(radius*radius))
		fmt.Printf("  %d     %.5f    %.5f\n", r, uz, want)
	}
	fmt.Printf("\npeak analytic %.5f; agreement within the bounce-back\n", uMax)
	fmt.Println("discretisation error confirms the solver (see internal/lb tests).")
}

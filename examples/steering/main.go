// Steering — the closed loop of Fig. 2 in one process: a distributed
// simulation with an embedded steering server, and a client goroutine
// that walks the §IV-C1 sequence: connect to the master, send
// visualisation parameters, receive images, change a simulation
// parameter (inlet pressure), and watch the flow respond. Frames are
// written as steer-*.png.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/geometry"
	"repro/internal/insitu"
	"repro/internal/steering"
)

func main() {
	sim, err := core.New(core.Config{
		Vessel: geometry.Aneurysm(20, 3.5, 5), H: 1.0, Tau: 0.9,
		Ranks:     4,
		VizEvery:  50,
		SteerAddr: "127.0.0.1:0", // ephemeral port
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sim.Close()
	fmt.Printf("simulation: %d sites on 4 ranks; steering at %s\n",
		sim.Dom.NumSites(), sim.Server.Addr())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		client(sim.Server.Addr())
	}()

	// The simulation runs until the client sends quit.
	if err := sim.Run(1 << 30); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	fmt.Printf("simulation stopped at step %d (steered quit)\n", sim.StepsDone)
}

// client performs the six-step in situ sequence of §IV-C1.
func client(addr string) {
	cl, err := steering.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// (2) connected to the simulation master; fetch status.
	st, err := cl.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[client] connected: step %d, %d sites on %d ranks\n", st.Step, st.NumSites, st.Ranks)

	// (3)-(6) send visualisation parameters, receive the image.
	req := insitu.DefaultRequest()
	req.W, req.H = 192, 144
	req.Scalar = field.ScalarSpeed
	for i, az := range []float64{0.2, 0.8, 1.4} {
		req.Azimuth = az
		png, w, h, err := cl.RequestImage(req)
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("steer-%d.png", i)
		if err := os.WriteFile(name, png, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[client] frame %s (%dx%d, viewpoint az=%.1f)\n", name, w, h, az)
	}

	// Closing the loop (§IV-C3): raise the inlet pressure and verify
	// the simulation keeps running with the new boundary condition.
	if err := cl.SetIoletDensity(0, 1.03); err != nil {
		log.Fatal(err)
	}
	fmt.Println("[client] inlet density raised to 1.03 — feedback applied mid-run")

	st, err = cl.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[client] still running at step %d; est. remaining %.1fs\n", st.Step, st.RemainingSec)

	// Pause, take a final frame, resume, quit.
	if err := cl.Pause(); err != nil {
		log.Fatal(err)
	}
	png, _, _, err := cl.RequestImage(req)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("steer-paused.png", png, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("[client] paused frame written to steer-paused.png")
	if err := cl.Resume(); err != nil {
		log.Fatal(err)
	}
	if err := cl.Quit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("[client] loop closed: parameters steered, images received, run ended")
}

// Aneurysm volume rendering — reproduces Fig. 4(a): blood flow
// developed in a vessel with a saccular aneurysm, volume-rendered with
// a velocity-magnitude transfer function, written as volume.png and
// volume.ppm. Also reports the wall-shear-stress distribution over the
// sac, the physiological observable the paper's post-processing is
// built to deliver.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/geometry"
	"repro/internal/lattice"
	"repro/internal/lb"
	"repro/internal/stats"
)

func main() {
	// Render the figure through the shared experiment harness so the
	// example and EXPERIMENTS.md stay in sync.
	img, err := experiments.Figure4a(experiments.FigureConfig{Steps: 800, W: 320, H: 240})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"volume.png", "volume.ppm"} {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if name == "volume.png" {
			err = img.EncodePNG(f)
		} else {
			err = img.EncodePPM(f)
		}
		cerr := f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Printf("wrote %s (%dx%d, %.1f%% of pixels covered)\n",
			name, img.W, img.H, 100*img.CoveredFraction())
	}

	// Wall shear stress over the sac vs the parent vessel.
	dom, err := geometry.Voxelise(geometry.Aneurysm(20, 3.5, 5), 1.0, lattice.D3Q19())
	if err != nil {
		log.Fatal(err)
	}
	solver, err := lb.New(dom, lb.Params{Tau: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	solver.Advance(800)
	_, _, _, _, wss := solver.Fields(nil, nil, nil, nil, nil)
	var sac, parent []float64
	for i, site := range dom.Sites {
		if site.Flags&geometry.FlagWall == 0 {
			continue
		}
		// The sac bulges towards +x beyond the parent radius.
		if dom.World(site.Pos).X > 4.0 {
			sac = append(sac, wss[i])
		} else {
			parent = append(parent, wss[i])
		}
	}
	fmt.Printf("\nwall shear stress (lattice units):\n")
	fmt.Printf("  parent vessel wall: %v\n", stats.Summarise(parent))
	fmt.Printf("  aneurysm sac wall:  %v\n", stats.Summarise(sac))
	fmt.Println("\nlow, heterogeneous sac WSS vs the parent vessel is the rupture-risk")
	fmt.Println("signature HemeLB users look for (paper, §I).")
	_ = field.ScalarWSS
}

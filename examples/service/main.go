// Example service demonstrates the multi-tenant layer end to end,
// self-contained: it starts the hemeserved service in-process, submits
// three simulations over HTTP, steers one mid-run, has two clients
// poll the same frame to show the shared cache collapsing the renders,
// and attaches two live SSE subscribers to one job to show the render
// pool pushing each snapshot's frame once to everyone. It closes with
// the durability loop: a job journaled to a data dir, the daemon
// killed mid-run (store writes cut dead, crash-style), and a fresh
// daemon on the same dir resuming the job from its last checkpoint.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/service/store"
)

func main() {
	mgr := service.NewManager(3, 16, nil)
	srv := service.NewServer(mgr)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fail(err)
	}
	base := "http://" + srv.Addr()
	fmt.Println("service listening on", base)

	// Three tenants submit jobs over plain HTTP.
	var ids []string
	for _, spec := range []string{
		`{"name":"alice","preset":"pipe","steps":4000,"viz_every":8}`,
		`{"name":"bob","preset":"aneurysm","steps":4000,"ranks":2,"viz_every":8}`,
		`{"name":"carol","preset":"bend","steps":4000,"viz_every":8}`,
	} {
		var info struct {
			ID string `json:"id"`
		}
		postJSON(base+"/api/v1/jobs", spec, &info)
		ids = append(ids, info.ID)
		fmt.Println("submitted", info.ID)
	}

	// Wait until all three run concurrently.
	for deadline := time.Now().Add(30 * time.Second); ; {
		var list struct {
			Jobs []struct {
				ID    string `json:"id"`
				State string `json:"state"`
				Step  int    `json:"step"`
			} `json:"jobs"`
		}
		getJSON(base+"/api/v1/jobs", &list)
		running := 0
		for _, j := range list.Jobs {
			if j.State == "running" {
				running++
			}
		}
		if running == 3 {
			fmt.Println("all 3 jobs running concurrently")
			break
		}
		if time.Now().After(deadline) {
			fail(fmt.Errorf("jobs never all ran: %+v", list))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Steer the first job: raise the inlet density mid-run.
	postJSON(base+"/api/v1/jobs/"+ids[0]+"/steer",
		`{"op":"set-iolet","iolet":0,"density":1.05}`, nil)
	fmt.Println("steered", ids[0], "inlet density -> 1.05")

	// Live streaming: two SSE subscribers follow the same view of the
	// third job. Each snapshot is rendered once (off the solver loop,
	// on the render pool) and pushed to both — no polling.
	var swg sync.WaitGroup
	streamed := make([][]int, 2)
	for i := range streamed {
		swg.Add(1)
		go func(i int) {
			defer swg.Done()
			streamed[i] = streamSteps(base+"/api/v1/jobs/"+ids[2]+"/stream?w=96&h=72", 3)
		}(i)
	}
	swg.Wait()
	fmt.Printf("two SSE subscribers received frames at steps %v and %v\n",
		streamed[0], streamed[1])

	// Pause the second job and have two clients fetch the same view:
	// one render, two consumers.
	postJSON(base+"/api/v1/jobs/"+ids[1]+"/pause", "", nil)
	var wg sync.WaitGroup
	frames := make([][]byte, 2)
	for i := range frames {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			frames[i] = get(base + "/api/v1/jobs/" + ids[1] + "/frame?w=96&h=72")
		}(i)
	}
	wg.Wait()
	fmt.Printf("two clients fetched the same frame: %d bytes, identical=%v\n",
		len(frames[0]), bytes.Equal(frames[0], frames[1]))
	if err := os.WriteFile("service_frame.png", frames[0], 0o644); err == nil {
		fmt.Println("wrote service_frame.png")
	}
	fmt.Print(string(get(base + "/metrics?format=flat")))

	// The flight recorder has been tracking every job all along: tail
	// the steered job's event trace and break down where its time goes.
	printEvents(base, ids[0])

	// Graceful stop cancels what is still running.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fail(err)
	}
	fmt.Println("shut down cleanly")

	durabilityDemo()
}

// durabilityDemo runs the kill-and-restart loop from docs/API.md: a
// durable daemon checkpoints a job, dies mid-run without any graceful
// journaling, and its successor on the same data dir resumes the job
// from the last checkpoint instead of losing it.
func durabilityDemo() {
	dir, err := os.MkdirTemp("", "hemeserved-demo-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("\n-- durability: kill a daemon mid-run, restart, lose nothing --")

	st, err := store.Open(dir)
	if err != nil {
		fail(err)
	}
	mgr := service.NewManagerOpts(service.Options{Workers: 1, Store: st})
	j, err := mgr.Submit(service.JobSpec{
		Preset: "pipe", Steps: 100_000, VizEvery: -1, CheckpointEvery: 64,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("submitted %s (100k steps, checkpoint every 64) to data dir %s\n", j.ID, dir)
	for {
		if _, step, err := st.Checkpoint(j.ID); err == nil && step > 0 {
			fmt.Printf("checkpoint on disk at step %d\n", step)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Crash: nothing journals past this instant, exactly like kill -9.
	st.Freeze()
	mgr.Close()
	_, ckptStep, err := st.Checkpoint(j.ID)
	if err != nil {
		fail(err)
	}
	fmt.Printf("daemon killed; store left with state=running, checkpoint step %d\n", ckptStep)

	st2, err := store.Open(dir)
	if err != nil {
		fail(err)
	}
	metrics := &service.Metrics{}
	mgr2 := service.NewManagerOpts(service.Options{Workers: 1, Store: st2, Metrics: metrics})
	fmt.Printf("restart: recovered %d job(s), re-queued %d\n",
		metrics.JobsRecovered.Load(), metrics.JobRestarts.Load())
	j2, err := mgr2.Get(j.ID)
	if err != nil {
		fail(err)
	}
	info := j2.Info()
	fmt.Printf("%s: recovered=%v restarts=%d resumed_from_step=%d\n",
		info.ID, info.Recovered, info.Restarts, info.ResumedFromStep)
	for j2.Step() <= ckptStep && !j2.State().Terminal() {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("solver continued past the checkpoint: now at step %d (> %d), state %s\n",
		j2.Step(), ckptStep, j2.State())
	mgr2.Close()
	fmt.Println("durable daemon shut down")
}

// printEvents tails a job's flight recorder (/jobs/{id}/events) and
// prints the last few events plus a per-phase timing breakdown
// aggregated from the timed events in the ring.
func printEvents(base, id string) {
	var rep struct {
		Total  uint64 `json:"total"`
		Events []struct {
			Seq    uint64 `json:"seq"`
			Type   string `json:"type"`
			Step   int    `json:"step"`
			DurNs  int64  `json:"dur_ns"`
			Detail string `json:"detail"`
		} `json:"events"`
	}
	getJSON(base+"/api/v1/jobs/"+id+"/events", &rep)
	fmt.Printf("\n-- flight recorder: %s (%d events total, ring holds %d) --\n",
		id, rep.Total, len(rep.Events))
	tail := rep.Events
	if len(tail) > 5 {
		tail = tail[len(tail)-5:]
	}
	for _, ev := range tail {
		line := fmt.Sprintf("  #%-4d %-22s", ev.Seq, ev.Type)
		if ev.Step > 0 {
			line += fmt.Sprintf(" step=%-6d", ev.Step)
		}
		if ev.DurNs > 0 {
			line += fmt.Sprintf(" dur=%v", time.Duration(ev.DurNs))
		}
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Println(line)
	}
	type agg struct {
		n   int
		sum int64
	}
	phases := map[string]*agg{}
	for _, ev := range rep.Events {
		if ev.DurNs <= 0 {
			continue
		}
		a := phases[ev.Type]
		if a == nil {
			a = &agg{}
			phases[ev.Type] = a
		}
		a.n++
		a.sum += ev.DurNs
	}
	fmt.Println("  phase breakdown (from ring):")
	for _, ph := range []string{"phase-step", "phase-gather", "phase-checkpoint", "checkpoint-write-end"} {
		if a := phases[ph]; a != nil {
			fmt.Printf("    %-22s %3d samples, mean %v\n",
				ph, a.n, time.Duration(a.sum/int64(a.n)))
		}
	}
}

// streamSteps subscribes to an SSE frame feed and returns the solver
// steps of the first n frames received.
func streamSteps(url string, n int) []int {
	rep, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer rep.Body.Close()
	if rep.StatusCode != http.StatusOK {
		fail(fmt.Errorf("stream %s: %s", url, rep.Status))
	}
	sc := bufio.NewScanner(rep.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var steps []int
	for len(steps) < n && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f struct {
			Step int `json:"step"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err == nil && f.Step > 0 {
			steps = append(steps, f.Step)
		}
	}
	return steps
}

func postJSON(url, body string, out any) {
	rep, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		fail(err)
	}
	defer rep.Body.Close()
	data, _ := io.ReadAll(rep.Body)
	if rep.StatusCode >= 300 {
		fail(fmt.Errorf("POST %s: %s: %s", url, rep.Status, data))
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			fail(err)
		}
	}
}

func getJSON(url string, out any) {
	if err := json.Unmarshal(get(url), out); err != nil {
		fail(err)
	}
}

func get(url string) []byte {
	rep, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer rep.Body.Close()
	data, _ := io.ReadAll(rep.Body)
	if rep.StatusCode >= 300 {
		fail(fmt.Errorf("GET %s: %s: %s", url, rep.Status, data))
	}
	return data
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "service example:", err)
	os.Exit(1)
}
